"""The incremental admission state machine.

An :class:`AdmissionRegistry` holds the set of transactions currently
*live* in the system and answers "may this transaction join?" with the
paper's decision procedure run **incrementally** (Proposition 2):

* condition (a) — every two-transaction subsystem safe — only the
  *new-vs-existing* pairs need vetting: every existing pair was vetted
  when its second member was admitted;
* condition (b) — for every directed cycle ``c`` of the interaction
  graph, ``B_c`` has a cycle — only the cycles **through the new
  transaction** need checking: every other cycle already existed (and
  eviction can only *remove* cycles, so the invariant survives
  departures).

Pair verdicts are looked up in a fingerprint-keyed LRU cache
(:mod:`repro.service.cache`) before any deciding happens, and cache
misses are fanned out over a :class:`~repro.service.pool.
PairVettingPool`.  A rejection never mutates the registry and carries a
replayable piece of evidence: the failing pair's certificate or witness
schedule, or the acyclic-``B_c`` interaction cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.entity import DistributedDatabase
from ..core.multi import b_graph_of_cycle
from ..core.safety import SafetyVerdict, decide_safety
from ..core.schedule import TransactionSystem
from ..core.transaction import Transaction
from ..errors import AdmissionError, AdmissionTimeout, VettingBudgetError
from ..graphs import DiGraph, has_cycle, simple_cycles
from ..obs import trace
from .cache import CachedVerdict, VerdictCache
from .fingerprint import fingerprint_of, pair_key
from .pool import PairVettingPool
from .stats import ServiceStats


@dataclass
class AdmissionDecision:
    """The registry's answer to one admission request."""

    admitted: bool
    name: str
    verdict: SafetyVerdict
    failing_pair: tuple[str, str] | None = None
    failing_cycle: tuple[str, ...] | None = None
    pairs_trivial: int = 0
    pairs_from_cache: int = 0
    pairs_vetted: int = 0
    cycles_checked: int = 0

    def to_dict(self) -> dict:
        """JSON-friendly rendering (used by ``repro vet --json``)."""
        payload = {
            "admitted": self.admitted,
            "name": self.name,
            "verdict": self.verdict.to_dict(),
            "pairs_trivial": self.pairs_trivial,
            "pairs_from_cache": self.pairs_from_cache,
            "pairs_vetted": self.pairs_vetted,
            "cycles_checked": self.cycles_checked,
        }
        if self.failing_pair is not None:
            payload["failing_pair"] = list(self.failing_pair)
        if self.failing_cycle is not None:
            payload["failing_cycle"] = list(self.failing_cycle)
        return payload


@dataclass
class _Member:
    """Registry-internal record of one live transaction."""

    transaction: Transaction
    fingerprint: str
    locked: frozenset[str] = field(default_factory=frozenset)


class AdmissionRegistry:
    """Maintains the live transaction set and vets admissions."""

    def __init__(
        self,
        *,
        database: DistributedDatabase | None = None,
        cache: VerdictCache | None = None,
        pool: PairVettingPool | None = None,
        stats: ServiceStats | None = None,
        cycle_limit: int | None = None,
        admission_timeout: float | None = None,
    ) -> None:
        """*database* may be fixed up front or adopted from the first
        admission.  *cache* and *pool* may be shared between registries
        (that is how a warmed cache carries over); *cycle_limit* bounds
        the Proposition 2 cycle enumeration per admission (``None`` =
        exhaustive; hitting the bound raises :class:`AdmissionError`
        rather than answering unsoundly); *admission_timeout* (seconds)
        bounds each admission's pair-vetting work — expiry raises
        :class:`~repro.errors.AdmissionTimeout` and leaves the registry
        unchanged."""
        self.database = database
        self.cache = cache if cache is not None else VerdictCache()
        self.pool = pool if pool is not None else PairVettingPool(workers=1)
        self.stats = stats if stats is not None else ServiceStats()
        self.cycle_limit = cycle_limit
        self.admission_timeout = admission_timeout
        self._members: dict[str, _Member] = {}
        # entity name -> names of live members locking it, so vetting
        # touches only the newcomer's actual neighbours instead of
        # scanning the whole live set on every admission.
        self._by_entity: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    @property
    def names(self) -> list[str]:
        """Live transaction names, in admission order."""
        return list(self._members)

    def member(self, name: str) -> Transaction:
        """The live transaction called *name*."""
        try:
            return self._members[name].transaction
        except KeyError:
            raise AdmissionError(f"no live transaction named {name!r}") from None

    def system(self) -> TransactionSystem:
        """The current live set as a :class:`TransactionSystem`."""
        if self.database is None:
            raise AdmissionError(
                "registry has no database yet (nothing was ever admitted)"
            )
        return TransactionSystem(
            [member.transaction for member in self._members.values()],
            database=self.database,
        )

    def interaction_edges(self) -> list[tuple[str, str]]:
        """Undirected interaction-graph edges among live transactions."""
        members = list(self._members.items())
        edges = []
        for position, (first, record) in enumerate(members):
            for second, other in members[position + 1 :]:
                if record.locked & other.locked:
                    edges.append((first, second))
        return edges

    def stats_dict(self) -> dict:
        """Service counters, cache counters, pool health and size."""
        return {
            "live_transactions": len(self._members),
            "service": self.stats.as_dict(),
            "cache": self.cache.stats(),
            "pool": self.pool.health_dict(),
        }

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def evict(self, name: str) -> Transaction:
        """Remove (and return) the live transaction *name*.

        Sound without rechecking anything: dropping a node only removes
        pairs and interaction cycles, and both Proposition 2 conditions
        are closed under taking subsystems of the checked set."""
        if name not in self._members:
            raise AdmissionError(f"cannot evict unknown transaction {name!r}")
        record = self._members.pop(name)
        for entity in record.locked:
            holders = self._by_entity[entity]
            holders.discard(name)
            if not holders:
                del self._by_entity[entity]
        self.stats.count("evicted")
        return record.transaction

    def admit(
        self, transaction: Transaction, *, want_certificate: bool = True
    ) -> AdmissionDecision:
        """Vet *transaction* against the live set; admit it if the
        extended system stays safe.

        Protocol mistakes (duplicate name, wrong database) raise
        :class:`AdmissionError`; an unsafe extension returns a rejection
        decision — with the failing pair's certificate or witness when
        *want_certificate* — and leaves the registry unchanged."""
        with trace.span("service.admit") as sp:
            if sp:
                sp.set(name=transaction.name, live=len(self._members))
            try:
                decision = self._admit(
                    transaction, want_certificate=want_certificate
                )
            except AdmissionTimeout:
                self.stats.count("admission_timeouts")
                if sp:
                    sp.set(timed_out=True)
                raise
            if sp:
                sp.set(admitted=decision.admitted)
            return decision

    def _admit(
        self, transaction: Transaction, *, want_certificate: bool
    ) -> AdmissionDecision:
        name = transaction.name
        if name in self._members:
            raise AdmissionError(
                f"a transaction named {name!r} is already live "
                "(evict it first or rename the newcomer)"
            )
        if self.database is None:
            self.database = transaction.database
        elif transaction.database != self.database:
            raise AdmissionError(
                f"transaction {name!r} uses a different database than "
                "the registry"
            )

        with self.stats.phase("fingerprint"):
            fingerprint = fingerprint_of(transaction)
            self.stats.count("fingerprints")
        locked = frozenset(transaction.locked_entities())
        decision = AdmissionDecision(
            admitted=False,
            name=name,
            verdict=SafetyVerdict(
                safe=True, method="admission", detail="pending"
            ),
        )

        rejection = self._vet_pairs(
            transaction, fingerprint, locked, decision, want_certificate
        )
        if rejection is None and len(self._members) >= 2:
            rejection = self._vet_cycles(transaction, locked, decision)
        if rejection is not None:
            self.stats.count("rejected")
            decision.verdict = rejection
            return decision

        self._members[name] = _Member(
            transaction=transaction, fingerprint=fingerprint, locked=locked
        )
        for entity in locked:
            self._by_entity.setdefault(entity, set()).add(name)
        self.stats.count("admitted")
        decision.admitted = True
        decision.verdict = SafetyVerdict(
            safe=True,
            method="admission",
            detail=(
                f"{name} admitted: {decision.pairs_trivial} trivial / "
                f"{decision.pairs_from_cache} cached / "
                f"{decision.pairs_vetted} vetted pairs safe, "
                f"{decision.cycles_checked} interaction cycles cyclic"
            ),
        )
        return decision

    def admit_system(
        self, system: TransactionSystem, *, want_certificate: bool = True
    ) -> list[AdmissionDecision]:
        """Admit every transaction of *system* in order; rejected ones
        are skipped (the rest are still tried)."""
        return [
            self.admit(transaction, want_certificate=want_certificate)
            for transaction in system.transactions
        ]

    def _shared_counts(self, locked: frozenset[str]) -> dict[str, int]:
        """For each live member sharing at least one entity of *locked*,
        how many entities it shares (via the entity index)."""
        counts: dict[str, int] = {}
        for entity in locked:
            for other in self._by_entity.get(entity, ()):
                counts[other] = counts.get(other, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Proposition 2, condition (a): new-vs-existing pairs
    # ------------------------------------------------------------------
    def _vet_pairs(
        self,
        transaction: Transaction,
        fingerprint: str,
        locked: frozenset[str],
        decision: AdmissionDecision,
        want_certificate: bool,
    ) -> SafetyVerdict | None:
        """Vet the newcomer against every live member.  Returns the
        rejection verdict, or ``None`` when all pairs are safe."""
        unsafe_partner: str | None = None
        to_vet: list[tuple[str, Transaction]] = []
        with self.stats.phase("pairs"):
            shared = self._shared_counts(locked)
            partners = [
                other for other, count in shared.items() if count >= 2
            ]
            # Members sharing fewer than two entities: D(Ti, Tj) has at
            # most one vertex, those pairs are trivially safe.
            trivial = len(self._members) - len(partners)
            decision.pairs_trivial += trivial
            self.stats.count("pairs_considered", len(self._members))
            self.stats.count("pairs_trivial", trivial)
            for other_name in partners:
                record = self._members[other_name]
                key = pair_key(fingerprint, record.fingerprint)
                cached = self.cache.get(key)
                if cached is not None:
                    decision.pairs_from_cache += 1
                    self.stats.count("pairs_from_cache")
                    if not cached.safe and unsafe_partner is None:
                        unsafe_partner = other_name
                    continue
                to_vet.append((other_name, record.transaction))
            if unsafe_partner is None and to_vet:
                verdicts = self.pool.vet(
                    [(transaction, other) for _, other in to_vet],
                    timeout=self.admission_timeout,
                )
                decision.pairs_vetted += len(to_vet)
                self.stats.count("pairs_vetted", len(to_vet))
                for (other_name, other), verdict in zip(to_vet, verdicts):
                    self.cache.put(
                        pair_key(
                            fingerprint,
                            self._members[other_name].fingerprint,
                        ),
                        CachedVerdict(
                            safe=verdict.safe,
                            method=verdict.method,
                            detail=verdict.detail,
                        ),
                    )
                    if not verdict.safe and unsafe_partner is None:
                        unsafe_partner = other_name
        if unsafe_partner is None:
            return None
        # Re-derive the full evidence from the live pair: certificates
        # and witness schedules mention concrete names, so they are
        # never cached — and only this one pair needs them.
        pair_system = TransactionSystem(
            [transaction, self._members[unsafe_partner].transaction]
        )
        evidence = decide_safety(
            pair_system, want_certificate=want_certificate
        )
        decision.failing_pair = (transaction.name, unsafe_partner)
        return SafetyVerdict(
            safe=False,
            method=evidence.method,
            detail=(
                f"pair {{{transaction.name}, {unsafe_partner}}} is "
                f"unsafe: {evidence.detail}"
            ),
            witness=evidence.witness,
            certificate=evidence.certificate,
        )

    # ------------------------------------------------------------------
    # Proposition 2, condition (b): cycles through the newcomer
    # ------------------------------------------------------------------
    def _vet_cycles(
        self,
        transaction: Transaction,
        locked: frozenset[str],
        decision: AdmissionDecision,
    ) -> SafetyVerdict | None:
        """Check every directed interaction cycle through the newcomer.
        Returns the rejection verdict, or ``None`` when all pass."""
        name = transaction.name
        with self.stats.phase("cycles"):
            adjacency = {name: set(self._shared_counts(locked))}
            if len(adjacency[name]) < 2:
                return None  # a cycle of length >= 3 needs two neighbours
            # Cycles through the newcomer stay inside its connected
            # component, so restrict the enumeration to it.
            component = {name}
            frontier = [name]
            while frontier:
                current = frontier.pop()
                neighbours = adjacency.get(current)
                if neighbours is None:
                    record = self._members[current]
                    neighbours = set(self._shared_counts(record.locked))
                    neighbours.discard(current)
                    if record.locked & locked:
                        neighbours.add(name)
                    adjacency[current] = neighbours
                for neighbour in neighbours:
                    if neighbour not in component:
                        component.add(neighbour)
                        frontier.append(neighbour)
            # Insert arcs in sorted order: DiGraph adjacency is
            # insertion-ordered, so this keeps the cycle enumeration
            # (and therefore which cycles a cycle_limit sees) the same
            # across runs regardless of set/hash ordering.
            graph = DiGraph(sorted(component))
            for node in sorted(component):
                for neighbour in sorted(adjacency[node]):
                    graph.add_arc(node, neighbour)
                    graph.add_arc(neighbour, node)
            extended = TransactionSystem(
                [record.transaction for record in self._members.values()]
                + [transaction],
                database=self.database,
            )
            produced = 0
            for cycle in simple_cycles(graph, limit=self.cycle_limit):
                produced += 1
                if len(cycle) < 3 or name not in cycle:
                    continue  # pairs are condition (a); old cycles were checked
                decision.cycles_checked += 1
                self.stats.count("cycles_checked")
                if not has_cycle(b_graph_of_cycle(extended, cycle)):
                    decision.failing_cycle = tuple(cycle)
                    return SafetyVerdict(
                        safe=False,
                        method="proposition-2",
                        detail=(
                            f"B_c is acyclic for the interaction-graph "
                            f"cycle {' -> '.join(cycle)}"
                        ),
                    )
            if self.cycle_limit is not None and produced >= self.cycle_limit:
                raise VettingBudgetError(
                    f"cycle enumeration hit its limit ({self.cycle_limit}) "
                    f"while vetting {name!r}; admission is undecided"
                )
        return None
