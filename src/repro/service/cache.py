"""A bounded LRU cache of pair safety verdicts.

Keys are unordered fingerprint pairs (:func:`repro.service.fingerprint.
pair_key`); values are :class:`CachedVerdict` records — the
name-independent part of a :class:`~repro.core.SafetyVerdict`.
Certificates and witness schedules are *not* cached: they mention
concrete transaction names, and only the single rejecting pair of an
admission ever needs one, so rejections re-derive their evidence from
the live pair instead.

Invariants:

* at most ``capacity`` entries are retained; inserting beyond that
  evicts the least recently *used* entry (gets count as uses);
* a hit never changes the stored verdict — entries are immutable;
* ``hits + misses`` equals the number of :meth:`VerdictCache.get` calls.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import AdmissionError
from ..obs import metrics
from .fingerprint import PairKey


def _cache_counter() -> metrics.Counter:
    return metrics.REGISTRY.counter(
        "repro_cache_events_total",
        "verdict-cache lookups and evictions, by event",
    )


@dataclass(frozen=True)
class CachedVerdict:
    """The shareable portion of a pair safety verdict."""

    safe: bool
    method: str
    detail: str


class VerdictCache:
    """Bounded LRU map from fingerprint pairs to pair verdicts."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise AdmissionError(
                f"verdict cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[PairKey, CachedVerdict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PairKey) -> bool:
        return key in self._entries

    def get(self, key: PairKey) -> CachedVerdict | None:
        """The cached verdict for *key*, refreshing its recency; counts
        a hit or a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            _cache_counter().labels(event="miss").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        _cache_counter().labels(event="hit").inc()
        return entry

    def put(self, key: PairKey, verdict: CachedVerdict) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = verdict
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            _cache_counter().labels(event="eviction").inc()

    def clear(self) -> None:
        """Drop every entry; counters are kept (they describe the
        cache's lifetime, not its contents)."""
        self._entries.clear()

    def hit_rate(self) -> float:
        """Fraction of gets that hit; 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters as a JSON-friendly dict."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate(), 4),
        }
