"""Content-addressed transaction fingerprints.

Safety of a two-transaction subsystem is a function of the two
transactions' *structures* only — the steps, the sites their entities
live at, and the partial order — never of the transaction names
(:meth:`repro.core.Transaction.canonical_form`).  Hashing that canonical
form therefore yields a fingerprint with the property the verdict cache
needs: equal fingerprints ⇒ interchangeable in any pair verdict.

Fleets of structurally identical transactions (the common case in a
high-throughput admission service: many clients running the same
transaction template) collapse onto one fingerprint and share every
cached pair verdict.
"""

from __future__ import annotations

import hashlib
import weakref

from ..core.transaction import Transaction

#: A fingerprint is a hex digest string; a pair key is the sorted pair.
Fingerprint = str
PairKey = tuple[str, str]

# Transactions are immutable once built, so a fingerprint can be
# computed once per object; keyed weakly so the memo never keeps a
# retired transaction alive.
_memo: "weakref.WeakKeyDictionary[Transaction, Fingerprint]" = (
    weakref.WeakKeyDictionary()
)


def _flatten(value, out: list[str]) -> None:
    if isinstance(value, tuple):
        out.append("(")
        for item in value:
            _flatten(item, out)
        out.append(")")
    else:
        out.append(repr(value))


def fingerprint_of(transaction: Transaction) -> Fingerprint:
    """SHA-256 digest of the transaction's canonical form.

    Deterministic across processes and sessions (no reliance on hash
    randomization), independent of the transaction's name and of the
    insertion order of its steps and precedence arcs.  Memoized per
    transaction object.
    """
    cached = _memo.get(transaction)
    if cached is not None:
        return cached
    pieces: list[str] = []
    _flatten(transaction.canonical_form(), pieces)
    digest = hashlib.sha256("\x1f".join(pieces).encode("utf-8")).hexdigest()
    _memo[transaction] = digest
    return digest


def pair_key(first: Fingerprint, second: Fingerprint) -> PairKey:
    """The cache key of an unordered fingerprint pair.

    Safety of ``{T1, T2}`` is symmetric, so the key sorts the two
    fingerprints: ``pair_key(a, b) == pair_key(b, a)``.
    """
    return (first, second) if first <= second else (second, first)
