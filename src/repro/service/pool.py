"""Parallel pair vetting over a process pool.

The admission decision procedure is embarrassingly parallel across the
new-vs-existing pairs (each ``D(Ti, Tj)`` is independent), so cache
misses are fanned out to a ``concurrent.futures.ProcessPoolExecutor``
in contiguous chunks.  Chunk results carry their input indices, and the
merge reassembles verdicts **in submission order** regardless of which
worker finished first — callers can zip the result against their pair
list.

``workers <= 1`` vets inline in the calling process (no pool, no
pickling); the executor is created lazily on the first parallel call
and reused until :meth:`PairVettingPool.close`, so per-admission
batches amortize the worker start-up cost.

When tracing (:mod:`repro.obs.trace`) is active at executor creation,
each worker is initialized to trace into its own ``<path>.w<pid>`` file
— workers cannot share the parent's file handle — and :meth:`close`
merges those files back into the parent trace, so vetting spans survive
the process-pool boundary.
"""

from __future__ import annotations

import math
import multiprocessing
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..core.safety import decide_safety
from ..core.schedule import TransactionSystem
from ..core.transaction import Transaction
from ..obs import trace

Pair = tuple[Transaction, Transaction]


@dataclass(frozen=True)
class PairVerdict:
    """The outcome of vetting one transaction pair."""

    safe: bool
    method: str
    detail: str


def _vet_chunk(
    chunk: Sequence[tuple[int, Transaction, Transaction]],
) -> list[tuple[int, bool, str, str]]:
    """Worker entry point: decide each indexed pair of *chunk*."""
    results = []
    for index, first, second in chunk:
        verdict = decide_safety(
            TransactionSystem([first, second]), want_certificate=False
        )
        results.append((index, verdict.safe, verdict.method, verdict.detail))
    return results


class PairVettingPool:
    """Vets batches of transaction pairs, serially or in parallel."""

    def __init__(
        self, workers: int = 1, *, chunk_size: int | None = None
    ) -> None:
        """*workers* processes; *chunk_size* pairs per task (default:
        batch split evenly, two chunks per worker, at least one pair)."""
        self.workers = max(1, int(workers))
        self.chunk_size = chunk_size
        self._executor: ProcessPoolExecutor | None = None
        self._trace_base: str | None = None

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            self._trace_base = trace.trace_path()
            init_kwargs = {}
            if self._trace_base is not None:
                init_kwargs = {
                    "initializer": trace.worker_init,
                    "initargs": (self._trace_base,),
                }
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context, **init_kwargs
            )
        return self._executor

    def _chunks_of(self, indexed: list) -> list[list]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(indexed) / (self.workers * 2)))
        return [
            indexed[start : start + size]
            for start in range(0, len(indexed), size)
        ]

    # ------------------------------------------------------------------
    def vet(self, pairs: Sequence[Pair]) -> list[PairVerdict]:
        """Verdicts for *pairs*, in the same order as *pairs*."""
        indexed = [
            (index, first, second)
            for index, (first, second) in enumerate(pairs)
        ]
        if self.workers <= 1 or len(indexed) <= 1:
            rows = _vet_chunk(indexed)
        else:
            executor = self._ensure_executor()
            rows = []
            for chunk_rows in executor.map(
                _vet_chunk, self._chunks_of(indexed)
            ):
                rows.extend(chunk_rows)
        merged: list[PairVerdict | None] = [None] * len(indexed)
        for index, safe, method, detail in rows:
            merged[index] = PairVerdict(safe=safe, method=method, detail=detail)
        assert all(item is not None for item in merged)
        return merged  # type: ignore[return-value]

    def close(self) -> None:
        """Shut the executor down (idempotent); if the workers were
        tracing, merge their trace files into the parent trace."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self._trace_base is not None:
            trace.absorb_worker_traces(self._trace_base)
            self._trace_base = None

    def __enter__(self) -> "PairVettingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
