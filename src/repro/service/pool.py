"""Parallel pair vetting over a process pool, with graceful degradation.

The admission decision procedure is embarrassingly parallel across the
new-vs-existing pairs (each ``D(Ti, Tj)`` is independent), so cache
misses are fanned out to a ``concurrent.futures.ProcessPoolExecutor``
in contiguous chunks.  Chunk results carry their input indices, and the
merge reassembles verdicts **in submission order** regardless of which
worker finished first — callers can zip the result against their pair
list.

``workers <= 1`` vets inline in the calling process (no pool, no
pickling); the executor is created lazily on the first parallel call
and reused until :meth:`PairVettingPool.close`, so per-admission
batches amortize the worker start-up cost.

Degradation ladder (PR 3) — a batch handed to :meth:`vet` is never
lost:

* a worker killed mid-batch (``BrokenProcessPool``) only invalidates
  the chunks whose futures died; the pool respawns its workers after a
  brief backoff and resubmits exactly those chunks, up to
  ``max_retries`` times;
* past the retry budget — or while the :class:`~repro.service.breaker.
  CircuitBreaker` is open after repeated failures — the remaining
  chunks are vetted *inline* in the calling process;
* a *timeout* (seconds) bounds the whole batch; both the parallel wait
  and the inline loop honor it and raise
  :class:`~repro.errors.AdmissionTimeout`.

Pool retries and fallbacks are counted in ``repro_retries_total``
(scope ``pool``) and ``repro_pool_fallbacks_total``.

When tracing (:mod:`repro.obs.trace`) is active at executor creation,
each worker is initialized to trace into its own ``<path>.w<pid>`` file
— workers cannot share the parent's file handle — and :meth:`close`
merges those files back into the parent trace, so vetting spans survive
the process-pool boundary.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..core.safety import decide_safety
from ..core.schedule import TransactionSystem
from ..core.transaction import Transaction
from ..errors import AdmissionTimeout
from ..obs import metrics, trace
from .breaker import CircuitBreaker

Pair = tuple[Transaction, Transaction]


def _pool_retries_counter() -> metrics.Counter:
    return metrics.REGISTRY.counter(
        "repro_retries_total",
        "aborted-and-requeued work units, by scope",
    )


def _fallbacks_counter() -> metrics.Counter:
    return metrics.REGISTRY.counter(
        "repro_pool_fallbacks_total",
        "vetting batches (fully or partially) degraded to inline",
    )


@dataclass(frozen=True)
class PairVerdict:
    """The outcome of vetting one transaction pair."""

    safe: bool
    method: str
    detail: str


def _vet_chunk(
    chunk: Sequence[tuple[int, Transaction, Transaction]],
) -> list[tuple[int, bool, str, str]]:
    """Worker entry point: decide each indexed pair of *chunk*."""
    results = []
    for index, first, second in chunk:
        verdict = decide_safety(
            TransactionSystem([first, second]), want_certificate=False
        )
        results.append((index, verdict.safe, verdict.method, verdict.detail))
    return results


def _vet_inline(
    items: Sequence[tuple[int, Transaction, Transaction]],
    deadline: float | None,
) -> list[tuple[int, bool, str, str]]:
    """Vet *items* in the calling process, checking *deadline* between
    pairs (cooperative per-admission timeout)."""
    rows: list[tuple[int, bool, str, str]] = []
    for item in items:
        if deadline is not None and time.monotonic() > deadline:
            raise AdmissionTimeout(
                f"pair vetting exceeded its admission timeout with "
                f"{len(items) - len(rows)} pairs left"
            )
        rows.extend(_vet_chunk([item]))
    return rows


class PairVettingPool:
    """Vets batches of transaction pairs, serially or in parallel."""

    def __init__(
        self,
        workers: int = 1,
        *,
        chunk_size: int | None = None,
        max_retries: int = 2,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        """*workers* processes; *chunk_size* pairs per task (default:
        batch split evenly, two chunks per worker, at least one pair);
        *max_retries* worker-respawn attempts per batch before
        degrading inline; *breaker* may be shared between pools."""
        self.workers = max(1, int(workers))
        self.chunk_size = chunk_size
        self.max_retries = max(0, int(max_retries))
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        #: Worker-respawn retries and inline degradations, lifetime.
        self.retries = 0
        self.fallbacks = 0
        self._executor: ProcessPoolExecutor | None = None
        self._trace_base: str | None = None

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            if self._trace_base is None:
                self._trace_base = trace.trace_path()
            init_kwargs = {}
            if self._trace_base is not None:
                init_kwargs = {
                    "initializer": trace.worker_init,
                    "initargs": (self._trace_base,),
                }
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context, **init_kwargs
            )
        return self._executor

    def _discard_executor(self) -> None:
        """Drop a broken executor so the next call respawns workers."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _chunks_of(self, indexed: list) -> list[list]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(indexed) / (self.workers * 2)))
        return [
            indexed[start : start + size]
            for start in range(0, len(indexed), size)
        ]

    # ------------------------------------------------------------------
    def vet(
        self, pairs: Sequence[Pair], *, timeout: float | None = None
    ) -> list[PairVerdict]:
        """Verdicts for *pairs*, in the same order as *pairs*.

        *timeout* (seconds) bounds the whole batch; on expiry
        :class:`~repro.errors.AdmissionTimeout` is raised and no
        verdict is returned."""
        deadline = None if timeout is None else time.monotonic() + timeout
        indexed = [
            (index, first, second)
            for index, (first, second) in enumerate(pairs)
        ]
        if self.workers <= 1 or len(indexed) <= 1:
            rows = _vet_inline(indexed, deadline)
        elif not self.breaker.allow():
            self.fallbacks += 1
            _fallbacks_counter().inc()
            rows = _vet_inline(indexed, deadline)
        else:
            rows = self._vet_parallel(indexed, deadline)
        merged: list[PairVerdict | None] = [None] * len(indexed)
        for index, safe, method, detail in rows:
            merged[index] = PairVerdict(safe=safe, method=method, detail=detail)
        assert all(item is not None for item in merged)
        return merged  # type: ignore[return-value]

    def _vet_parallel(
        self,
        indexed: list[tuple[int, Transaction, Transaction]],
        deadline: float | None,
    ) -> list[tuple[int, bool, str, str]]:
        """Fan chunks out to the pool; on worker death resubmit exactly
        the chunks that died, then degrade inline past the budget."""
        pending = self._chunks_of(indexed)
        rows: list[tuple[int, bool, str, str]] = []
        attempt = 0
        while pending:
            executor = self._ensure_executor()
            futures = {
                executor.submit(_vet_chunk, chunk): chunk
                for chunk in pending
            }
            pending = []
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            try:
                for future in as_completed(futures, timeout=remaining):
                    try:
                        rows.extend(future.result())
                    except BrokenProcessPool:
                        pending.append(futures[future])
            except FuturesTimeout:
                for future in futures:
                    future.cancel()
                raise AdmissionTimeout(
                    f"pair vetting exceeded its admission timeout with "
                    f"{len(futures)} chunks in flight"
                ) from None
            if not pending:
                self.breaker.record_success()
                break
            # A worker died mid-batch: the chunks whose futures broke
            # are still owed.  Respawn and resubmit them.
            self._discard_executor()
            self.breaker.record_failure()
            attempt += 1
            if attempt > self.max_retries or not self.breaker.allow():
                self.fallbacks += 1
                _fallbacks_counter().inc()
                flat = [item for chunk in pending for item in chunk]
                rows.extend(_vet_inline(flat, deadline))
                break
            self.retries += 1
            _pool_retries_counter().labels(scope="pool").inc()
            # Brief backoff before respawning a fresh worker fleet.
            time.sleep(min(0.05 * (2 ** (attempt - 1)), 0.5))
        return rows

    def health_dict(self) -> dict:
        """Pool degradation counters and breaker state."""
        return {
            "workers": self.workers,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "breaker": self.breaker.as_dict(),
        }

    def close(self) -> None:
        """Shut the executor down (idempotent); if the workers were
        tracing, merge their trace files into the parent trace."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self._trace_base is not None:
            trace.absorb_worker_traces(self._trace_base)
            self._trace_base = None

    def __enter__(self) -> "PairVettingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
