"""Structured service counters and phase timers.

Every admission walks the same phases — fingerprint, pair vetting,
cycle check — and :class:`ServiceStats` accumulates both event counters
and wall-clock seconds per phase, so throughput regressions can be
attributed to a phase instead of guessed at.

Since PR 2 the stats ride on the shared observability stack
(:mod:`repro.obs`): every :meth:`ServiceStats.count` also increments
the process-wide ``repro_service_events_total`` counter, every
:meth:`ServiceStats.phase` block is timed into the
``repro_service_phase_seconds`` histogram *and* wrapped in a
``service.<phase>`` trace span — while :meth:`as_dict` keeps its
original per-instance shape, so existing consumers (``repro vet
--json``, the benchmarks) are unaffected.  A phase that raises still
records its elapsed time, counts into ``phase_errors`` (and the
``repro_service_phase_errors_total`` metric), and marks its span with
``error=True``; the exception propagates untouched.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from ..obs import metrics, trace


def _events_counter() -> metrics.Counter:
    return metrics.REGISTRY.counter(
        "repro_service_events_total",
        "admission-service event counters, by event",
    )


def _phase_histogram() -> metrics.Histogram:
    return metrics.REGISTRY.histogram(
        "repro_service_phase_seconds",
        "wall time of admission phases, by phase",
    )


def _phase_errors_counter() -> metrics.Counter:
    return metrics.REGISTRY.counter(
        "repro_service_phase_errors_total",
        "admission phases that raised, by phase",
    )


class ServiceStats:
    """Counters and per-phase wall time for one admission service."""

    COUNTERS = (
        "admitted",
        "rejected",
        "evicted",
        "fingerprints",
        "pairs_considered",
        "pairs_trivial",
        "pairs_vetted",
        "pairs_from_cache",
        "cycles_checked",
        "admission_timeouts",
    )

    def __init__(self) -> None:
        for name in self.COUNTERS:
            setattr(self, name, 0)
        self.phase_seconds: dict[str, float] = {}
        self.phase_errors: dict[str, int] = {}

    def count(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter *name* (must be a known counter);
        the shared metrics registry is incremented alongside."""
        if name not in self.COUNTERS:
            raise KeyError(f"unknown service counter {name!r}")
        setattr(self, name, getattr(self, name) + amount)
        if amount:
            _events_counter().labels(event=name).inc(amount)

    @contextmanager
    def phase(self, name: str):
        """Context manager accumulating wall time under *name*.

        The block is also a ``service.<name>`` trace span and a
        ``repro_service_phase_seconds`` observation.  On an exception
        the elapsed time is still recorded, the error is counted, and
        the exception propagates.
        """
        start = time.perf_counter()
        failed = False
        with trace.span(f"service.{name}"):
            try:
                yield
            except BaseException:
                failed = True
                raise
            finally:
                elapsed = time.perf_counter() - start
                self.phase_seconds[name] = (
                    self.phase_seconds.get(name, 0.0) + elapsed
                )
                _phase_histogram().labels(phase=name).observe(elapsed)
                if failed:
                    self.phase_errors[name] = (
                        self.phase_errors.get(name, 0) + 1
                    )
                    _phase_errors_counter().labels(phase=name).inc()

    def as_dict(self) -> dict:
        """All counters and phase times, JSON-friendly."""
        payload = {name: getattr(self, name) for name in self.COUNTERS}
        payload["phase_seconds"] = {
            name: round(seconds, 6)
            for name, seconds in sorted(self.phase_seconds.items())
        }
        if self.phase_errors:
            payload["phase_errors"] = dict(sorted(self.phase_errors.items()))
        return payload

    def render(self) -> str:
        """Human-readable multi-line rendering of :meth:`as_dict`."""
        lines = ["service stats:"]
        for name in self.COUNTERS:
            lines.append(f"  {name:>16}: {getattr(self, name)}")
        if self.phase_seconds:
            lines.append("  wall time per phase:")
            for name, seconds in sorted(self.phase_seconds.items()):
                suffix = ""
                if self.phase_errors.get(name):
                    suffix = f"  ({self.phase_errors[name]} error(s))"
                lines.append(
                    f"  {name:>16}: {seconds * 1e3:8.2f} ms{suffix}"
                )
        return "\n".join(lines)
