"""Structured service counters and phase timers.

Every admission walks the same phases — fingerprint, pair vetting,
cycle check — and :class:`ServiceStats` accumulates both event counters
and wall-clock seconds per phase, so throughput regressions can be
attributed to a phase instead of guessed at.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class ServiceStats:
    """Counters and per-phase wall time for one admission service."""

    COUNTERS = (
        "admitted",
        "rejected",
        "evicted",
        "fingerprints",
        "pairs_considered",
        "pairs_trivial",
        "pairs_vetted",
        "pairs_from_cache",
        "cycles_checked",
    )

    def __init__(self) -> None:
        for name in self.COUNTERS:
            setattr(self, name, 0)
        self.phase_seconds: dict[str, float] = {}

    def count(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter *name* (must be a known counter)."""
        if name not in self.COUNTERS:
            raise KeyError(f"unknown service counter {name!r}")
        setattr(self, name, getattr(self, name) + amount)

    @contextmanager
    def phase(self, name: str):
        """Context manager accumulating wall time under *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def as_dict(self) -> dict:
        """All counters and phase times, JSON-friendly."""
        payload = {name: getattr(self, name) for name in self.COUNTERS}
        payload["phase_seconds"] = {
            name: round(seconds, 6)
            for name, seconds in sorted(self.phase_seconds.items())
        }
        return payload

    def render(self) -> str:
        """Human-readable multi-line rendering of :meth:`as_dict`."""
        lines = ["service stats:"]
        for name in self.COUNTERS:
            lines.append(f"  {name:>16}: {getattr(self, name)}")
        if self.phase_seconds:
            lines.append("  wall time per phase:")
            for name, seconds in sorted(self.phase_seconds.items()):
                lines.append(f"  {name:>16}: {seconds * 1e3:8.2f} ms")
        return "\n".join(lines)
