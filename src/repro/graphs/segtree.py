"""A max segment tree with point deletion.

Substrate for the near-linear centralized safety test
(:mod:`repro.core.fastcheck`): reachability over the *implicit* conflict
digraph ``D(t1, t2)`` needs "among the not-yet-visited entities whose
lock position is below a bound, repeatedly extract one whose unlock
position exceeds a threshold" — a prefix arg-max query plus deletion,
both ``O(log k)`` here.
"""

from __future__ import annotations

from collections.abc import Sequence

NEG_INF = float("-inf")


class MaxSegmentTree:
    """Static-size segment tree over floats supporting prefix arg-max
    and point deactivation."""

    def __init__(self, values: Sequence[float]) -> None:
        self._n = max(1, len(values))
        size = 1
        while size < self._n:
            size *= 2
        self._size = size
        self._tree = [NEG_INF] * (2 * size)
        for index, value in enumerate(values):
            self._tree[size + index] = value
        for node in range(size - 1, 0, -1):
            self._tree[node] = max(
                self._tree[2 * node], self._tree[2 * node + 1]
            )

    def __len__(self) -> int:
        return self._n

    def value_at(self, index: int) -> float:
        return self._tree[self._size + index]

    def deactivate(self, index: int) -> None:
        """Remove *index* from all future queries."""
        node = self._size + index
        self._tree[node] = NEG_INF
        node //= 2
        while node:
            self._tree[node] = max(
                self._tree[2 * node], self._tree[2 * node + 1]
            )
            node //= 2

    def prefix_argmax(self, end: int) -> tuple[int, float]:
        """``(index, value)`` of the maximum over ``[0, end)``; returns
        ``(-1, -inf)`` when the range is empty or fully deactivated."""
        if end <= 0:
            return -1, NEG_INF
        end = min(end, self._n)
        # Collect covering nodes left-to-right, then descend the best.
        best_node = 0
        best_value = NEG_INF
        lo = self._size
        hi = self._size + end  # exclusive
        nodes: list[int] = []
        while lo < hi:
            if lo & 1:
                nodes.append(lo)
                lo += 1
            if hi & 1:
                hi -= 1
                nodes.append(hi)
            lo //= 2
            hi //= 2
        for node in nodes:
            if self._tree[node] > best_value:
                best_value = self._tree[node]
                best_node = node
        if best_value == NEG_INF:
            return -1, NEG_INF
        while best_node < self._size:
            left, right = 2 * best_node, 2 * best_node + 1
            best_node = left if self._tree[left] == best_value else right
        return best_node - self._size, best_value

    def extract_above(self, end: int, threshold: float) -> int | None:
        """Pop (deactivate and return) an index in ``[0, end)`` whose
        value strictly exceeds *threshold*; ``None`` if no such index."""
        index, value = self.prefix_argmax(end)
        if index < 0 or value <= threshold:
            return None
        self.deactivate(index)
        return index
