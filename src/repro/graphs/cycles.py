"""Simple-cycle enumeration (Johnson's algorithm).

Proposition 2 (Section 6 of the paper) quantifies over the directed cycles
of the conflict graph ``G`` of a many-transaction system: the system is
safe iff every two-transaction subsystem is safe *and* for each directed
cycle ``c`` of ``G`` the union graph ``B_c`` contains a cycle.  This module
provides the cycle enumeration that decider needs.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from .digraph import DiGraph
from .scc import strongly_connected_components


def simple_cycles(
    graph: DiGraph, limit: int | None = None
) -> Iterator[list[Hashable]]:
    """Yield every elementary directed cycle of *graph* as a node list
    (without repeating the starting node at the end).

    Implementation: Johnson (1975), restricted to one strongly connected
    component at a time.  Self-loops are yielded as single-node cycles.
    *limit* optionally caps the number of cycles produced.
    """
    produced = 0

    # Self-loops first; Johnson's recursion below ignores them.
    for node in graph.nodes():
        if graph.has_arc(node, node):
            yield [node]
            produced += 1
            if limit is not None and produced >= limit:
                return

    work = graph.without_self_loops()
    order = {node: position for position, node in enumerate(graph.nodes())}

    while True:
        # Find the SCC (with >= 2 nodes) containing the least-order node.
        candidates = [
            component
            for component in strongly_connected_components(work)
            if len(component) >= 2
        ]
        if not candidates:
            return
        component = min(
            candidates, key=lambda members: min(order[m] for m in members)
        )
        sub = work.subgraph(component)
        start = min(component, key=lambda member: order[member])

        blocked: set[Hashable] = set()
        blocked_map: dict[Hashable, set[Hashable]] = {
            node: set() for node in sub.nodes()
        }
        path: list[Hashable] = []

        def unblock(node: Hashable) -> None:
            stack = [node]
            while stack:
                current = stack.pop()
                if current in blocked:
                    blocked.discard(current)
                    stack.extend(blocked_map[current])
                    blocked_map[current].clear()

        def circuit(node: Hashable) -> Iterator[list[Hashable]]:
            nonlocal produced
            found = False
            path.append(node)
            blocked.add(node)
            for nxt in sub.successors(node):
                if nxt == start:
                    yield list(path)
                    produced += 1
                    found = True
                    if limit is not None and produced >= limit:
                        path.pop()
                        return
                elif nxt not in blocked:
                    for cycle in circuit(nxt):
                        yield cycle
                        found = True
                        if limit is not None and produced >= limit:
                            path.pop()
                            return
            if found:
                unblock(node)
            else:
                for nxt in sub.successors(node):
                    blocked_map[nxt].add(node)
            path.pop()

        yield from circuit(start)
        if limit is not None and produced >= limit:
            return
        # Remove the start node and continue with the remainder.
        remaining = [node for node in work.nodes() if node != start]
        work = work.subgraph(remaining)


def has_cycle(graph: DiGraph) -> bool:
    """True iff *graph* contains any directed cycle (incl. self-loops)."""
    if any(graph.has_arc(node, node) for node in graph.nodes()):
        return True
    return any(
        len(component) >= 2
        for component in strongly_connected_components(graph)
    )
