"""Strongly connected components (iterative Tarjan) and condensation.

Strong connectivity of the conflict digraph ``D(T1, T2)`` is the paper's
safety criterion (Theorems 1 and 2), so this module is on the hot path of
every safety decision.  The implementation is iterative to survive the
deep graphs produced by the ``O(n^2)`` scaling benchmarks.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..obs.trace import current_span
from .digraph import DiGraph


def strongly_connected_components(graph: DiGraph) -> list[list[Hashable]]:
    """Tarjan's algorithm; components are returned in reverse topological
    order of the condensation (every arc between components goes from a
    later component in the list to an earlier one).
    """
    index_of: dict[Hashable, int] = {}
    lowlink: dict[Hashable, int] = {}
    on_stack: set[Hashable] = set()
    stack: list[Hashable] = []
    components: list[list[Hashable]] = []
    counter = 0

    for root in graph.nodes():
        if root in index_of:
            continue
        # Explicit DFS stack of (node, iterator over successors).
        work: list[tuple[Hashable, int]] = [(root, 0)]
        while work:
            node, child_pos = work.pop()
            if child_pos == 0:
                index_of[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            successors = graph.successors(node)
            for pos in range(child_pos, len(successors)):
                nxt = successors[pos]
                if nxt not in index_of:
                    work.append((node, pos + 1))
                    work.append((nxt, 0))
                    recurse = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if recurse:
                continue
            if lowlink[node] == index_of[node]:
                component: list[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    sp = current_span()
    if sp:
        sp.set(
            scc_count=len(components),
            scc_max_size=max((len(c) for c in components), default=0),
        )
    return components


def is_strongly_connected(graph: DiGraph, *, empty_is_connected: bool = True) -> bool:
    """True iff *graph* has at most one strongly connected component.

    The paper's criterion treats a ``D`` graph with zero or one vertices
    (fewer than two shared entities) as trivially safe, which matches the
    convention ``empty_is_connected=True``.
    """
    if graph.node_count() == 0:
        return empty_is_connected
    if graph.node_count() == 1:
        return True
    # Cheaper than full Tarjan: reachability out of and into one node.
    first = graph.nodes()[0]
    if len(graph.reachable_from(first)) != graph.node_count():
        return False
    return len(graph.reaching(first)) == graph.node_count()


def condensation(
    graph: DiGraph,
) -> tuple[DiGraph, dict[Hashable, int], list[list[Hashable]]]:
    """Condense *graph* into its DAG of strongly connected components.

    Returns ``(dag, component_of, components)`` where the DAG's nodes are
    integer component ids indexing into ``components`` and
    ``component_of`` maps each original node to its component id.
    """
    components = strongly_connected_components(graph)
    component_of: dict[Hashable, int] = {}
    for cid, members in enumerate(components):
        for member in members:
            component_of[member] = cid
    dag = DiGraph(range(len(components)))
    for tail, head in graph.arcs():
        tail_c, head_c = component_of[tail], component_of[head]
        if tail_c != head_c:
            dag.add_arc(tail_c, head_c)
    return dag, component_of, components
