"""Enumeration of ancestor-closed node sets (the paper's *dominators*).

Definition 2 of the paper: a **dominator** of a digraph ``D = (V, A)`` is a
nonempty proper subset ``X`` of ``V`` with no incoming arcs from ``V - X``.
Equivalently, ``X`` is a union of strongly connected components that is
closed under taking predecessors — an *ancestor-closed* set, i.e. a
down-set of the condensation DAG ordered by reachability.

Dominators drive both directions of the paper's hard results:

* Theorem 2 turns any dominator of a two-site ``D(T1, T2)`` into a
  certificate of unsafeness;
* Theorem 3's reduction encodes truth assignments as dominators;
* the exact multi-site decider enumerates dominators as candidate
  "zero-sets" of the schedule bit-vector (DESIGN.md §2.3).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from .digraph import DiGraph
from .scc import condensation


def enumerate_ancestor_closed_sets(
    graph: DiGraph,
    *,
    include_empty: bool = False,
    include_full: bool = False,
    limit: int | None = None,
) -> Iterator[frozenset[Hashable]]:
    """Yield node sets closed under predecessors.

    With the default flags this enumerates exactly the paper's dominators.
    The enumeration works on the condensation DAG: each ancestor-closed
    set is a union of components whose indicator is monotone along
    condensation arcs.  Components are processed in topological order and
    the choice "in / out" is branched with the constraint that a component
    may be *in* only if all its predecessors are in — so only valid sets
    are ever visited (no generate-and-filter blowup).
    """
    dag, _, components = condensation(graph)
    # Tarjan emits components in reverse topological order.
    topo_components = list(reversed(range(len(components))))
    n = len(topo_components)
    position_of = {cid: i for i, cid in enumerate(topo_components)}
    produced = 0

    chosen: list[bool] = []

    def backtrack(position: int) -> Iterator[frozenset[Hashable]]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if position == n:
            size = sum(chosen)
            if size == 0 and not include_empty:
                return
            if size == n and not include_full:
                return
            members: set[Hashable] = set()
            for idx, picked in enumerate(chosen):
                if picked:
                    members.update(components[topo_components[idx]])
            produced += 1
            yield frozenset(members)
            return
        cid = topo_components[position]
        # "in" allowed only when every predecessor component was chosen.
        predecessors_in = all(
            chosen[position_of[pred]] for pred in dag.predecessors(cid)
        )
        if predecessors_in:
            chosen.append(True)
            yield from backtrack(position + 1)
            chosen.pop()
        chosen.append(False)
        yield from backtrack(position + 1)
        chosen.pop()

    yield from backtrack(0)


def dominators(
    graph: DiGraph, limit: int | None = None
) -> Iterator[frozenset[Hashable]]:
    """Enumerate all dominators of *graph* in the sense of Definition 2."""
    yield from enumerate_ancestor_closed_sets(graph, limit=limit)


def is_dominator(graph: DiGraph, candidate: frozenset[Hashable] | set[Hashable]) -> bool:
    """Check Definition 2 directly: nonempty proper subset of the nodes
    with no incoming arcs from the complement."""
    nodes = set(graph.nodes())
    members = set(candidate)
    if not members or not members < nodes:
        return False
    return all(
        head not in members or tail in members
        for tail, head in graph.arcs()
    )


def some_dominator(graph: DiGraph) -> frozenset[Hashable] | None:
    """Return one dominator, or None if the graph is strongly connected.

    Uses the first source component of the condensation, which is the
    canonical dominator the Theorem 2 certificate construction starts
    from.
    """
    dag, _, components = condensation(graph)
    if len(components) <= 1:
        return None
    for cid in dag.nodes():
        if dag.in_degree(cid) == 0:
            return frozenset(components[cid])
    raise AssertionError("a DAG with >=1 node always has a source")
