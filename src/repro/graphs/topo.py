"""Topological sorting, including the priority-driven variants used by the
unsafeness-certificate construction of Theorem 2.

The proof of Theorem 2 builds two special linear extensions:

* ``t1``: a topological sort of ``T1'`` that places the ``Ux`` steps of the
  dominator ``X`` *as early as possible*;
* ``t2``: a topological sort of ``T2'`` that places the ``Lx`` steps of
  ``X`` *as late as possible*, breaking ties among ``Lx`` steps by the
  order their ``Ux`` twins received in ``t1``.

Both are instances of greedy Kahn sorts with a priority key, provided
here as :func:`topological_sort` with a ``key`` callable.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Hashable, Iterator

from .digraph import DiGraph


class CycleError(ValueError):
    """Raised when a graph that must be acyclic contains a cycle."""

    def __init__(self, message: str, cycle: list[Hashable] | None = None):
        super().__init__(message)
        self.cycle = cycle or []


def is_acyclic(graph: DiGraph) -> bool:
    """True iff *graph* has no directed cycle (self-loops count)."""
    indegree = {node: graph.in_degree(node) for node in graph.nodes()}
    ready = [node for node, deg in indegree.items() if deg == 0]
    seen = 0
    while ready:
        node = ready.pop()
        seen += 1
        for nxt in graph.successors(node):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    return seen == graph.node_count()


def find_cycle(graph: DiGraph) -> list[Hashable] | None:
    """Return one directed cycle as a node list (first == last), or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph.nodes()}
    parent: dict[Hashable, Hashable] = {}
    for root in graph.nodes():
        if color[root] != WHITE:
            continue
        stack: list[tuple[Hashable, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            node, pos = stack.pop()
            successors = graph.successors(node)
            advanced = False
            for idx in range(pos, len(successors)):
                nxt = successors[idx]
                if color[nxt] == GRAY:
                    # Found a back arc node -> nxt: reconstruct the cycle.
                    cycle = [node]
                    cursor = node
                    while cursor != nxt:
                        cursor = parent[cursor]
                        cycle.append(cursor)
                    cycle.reverse()
                    cycle.append(cycle[0])
                    return cycle
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((node, idx + 1))
                    stack.append((nxt, 0))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
    return None


def topological_sort(
    graph: DiGraph,
    key: Callable[[Hashable], object] | None = None,
) -> list[Hashable]:
    """Kahn topological sort.

    When *key* is given, among the currently available (indegree-zero)
    nodes the one with the **smallest** key is emitted first; this is how
    "place these steps as early as possible" priorities are expressed.
    Without *key*, insertion order is used, keeping results deterministic.

    Raises :class:`CycleError` if the graph has a directed cycle.
    """
    indegree = {node: graph.in_degree(node) for node in graph.nodes()}
    order_of = {node: position for position, node in enumerate(graph.nodes())}

    def sort_key(node: Hashable) -> tuple:
        if key is None:
            return (order_of[node],)
        return (key(node), order_of[node])

    heap: list[tuple[tuple, int, Hashable]] = []
    tiebreak = 0
    for node, degree in indegree.items():
        if degree == 0:
            heapq.heappush(heap, (sort_key(node), tiebreak, node))
            tiebreak += 1
    result: list[Hashable] = []
    while heap:
        _, _, node = heapq.heappop(heap)
        result.append(node)
        for nxt in graph.successors(node):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                heapq.heappush(heap, (sort_key(nxt), tiebreak, nxt))
                tiebreak += 1
    if len(result) != graph.node_count():
        raise CycleError(
            "graph contains a directed cycle; no topological order exists",
            find_cycle(graph),
        )
    return result


def all_topological_sorts(
    graph: DiGraph, limit: int | None = None
) -> Iterator[list[Hashable]]:
    """Yield every topological sort of *graph* (backtracking Kahn).

    Used by the exhaustive safety decider to enumerate the linear
    extensions of small transactions; *limit* caps the enumeration for
    defensive use on unexpectedly large inputs.
    """
    indegree = {node: graph.in_degree(node) for node in graph.nodes()}
    total = graph.node_count()
    prefix: list[Hashable] = []
    produced = 0

    def backtrack() -> Iterator[list[Hashable]]:
        nonlocal produced
        if len(prefix) == total:
            produced += 1
            yield list(prefix)
            return
        for node, degree in list(indegree.items()):
            if degree != 0:
                continue
            indegree[node] = -1  # mark as used
            for nxt in graph.successors(node):
                indegree[nxt] -= 1
            prefix.append(node)
            yield from backtrack()
            prefix.pop()
            for nxt in graph.successors(node):
                indegree[nxt] += 1
            indegree[node] = 0
            if limit is not None and produced >= limit:
                return

    yield from backtrack()
