"""A small, dependency-free directed-graph container.

Every graph algorithm in this reproduction (strong connectivity for
Theorem 1/2, dominator enumeration for Theorem 3, topological sorting for
the unsafeness certificates) runs on :class:`DiGraph`.  Nodes may be any
hashable objects; insertion order of nodes and arcs is preserved, which
keeps every algorithm in the package deterministic.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import TypeVar

Node = TypeVar("Node", bound=Hashable)


class DiGraph:
    """A directed graph with hashable nodes and no parallel arcs.

    Self-loops are permitted (some intermediate constructions produce
    them) but most callers strip them; see :meth:`without_self_loops`.
    """

    def __init__(
        self,
        nodes: Iterable[Hashable] = (),
        arcs: Iterable[tuple[Hashable, Hashable]] = (),
    ) -> None:
        self._succ: dict[Hashable, dict[Hashable, None]] = {}
        self._pred: dict[Hashable, dict[Hashable, None]] = {}
        for node in nodes:
            self.add_node(node)
        for tail, head in arcs:
            self.add_arc(tail, head)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Hashable) -> None:
        """Insert *node* if not already present."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_arc(self, tail: Hashable, head: Hashable) -> None:
        """Insert the arc ``tail -> head``, adding endpoints as needed."""
        self.add_node(tail)
        self.add_node(head)
        self._succ[tail][head] = None
        self._pred[head][tail] = None

    def remove_arc(self, tail: Hashable, head: Hashable) -> None:
        """Remove the arc ``tail -> head``; raise ``KeyError`` if absent."""
        del self._succ[tail][head]
        del self._pred[head][tail]

    def copy(self) -> "DiGraph":
        """Return an independent copy of the graph."""
        clone = DiGraph()
        for node in self._succ:
            clone.add_node(node)
        for tail, head in self.arcs():
            clone.add_arc(tail, head)
        return clone

    def without_self_loops(self) -> "DiGraph":
        """Return a copy with every arc ``v -> v`` removed."""
        clone = DiGraph(self.nodes())
        for tail, head in self.arcs():
            if tail != head:
                clone.add_arc(tail, head)
        return clone

    def reversed(self) -> "DiGraph":
        """Return the graph with every arc reversed."""
        clone = DiGraph(self.nodes())
        for tail, head in self.arcs():
            clone.add_arc(head, tail)
        return clone

    def subgraph(self, keep: Iterable[Hashable]) -> "DiGraph":
        """Return the subgraph induced by the nodes in *keep*."""
        kept = set(keep)
        clone = DiGraph(node for node in self.nodes() if node in kept)
        for tail, head in self.arcs():
            if tail in kept and head in kept:
                clone.add_arc(tail, head)
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nodes(self) -> list[Hashable]:
        """All nodes, in insertion order."""
        return list(self._succ)

    def arcs(self) -> list[tuple[Hashable, Hashable]]:
        """All arcs ``(tail, head)``, in insertion order of tails."""
        return [
            (tail, head)
            for tail, heads in self._succ.items()
            for head in heads
        ]

    def successors(self, node: Hashable) -> list[Hashable]:
        """Nodes *y* with an arc ``node -> y``."""
        return list(self._succ[node])

    def predecessors(self, node: Hashable) -> list[Hashable]:
        """Nodes *y* with an arc ``y -> node``."""
        return list(self._pred[node])

    def has_node(self, node: Hashable) -> bool:
        return node in self._succ

    def has_arc(self, tail: Hashable, head: Hashable) -> bool:
        return tail in self._succ and head in self._succ[tail]

    def in_degree(self, node: Hashable) -> int:
        return len(self._pred[node])

    def out_degree(self, node: Hashable) -> int:
        return len(self._succ[node])

    def node_count(self) -> int:
        return len(self._succ)

    def arc_count(self) -> int:
        return sum(len(heads) for heads in self._succ.values())

    def __contains__(self, node: Hashable) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._succ)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiGraph(nodes={self.node_count()}, arcs={self.arc_count()})"
        )

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def reachable_from(self, source: Hashable) -> set[Hashable]:
        """All nodes reachable from *source* (including *source*)."""
        seen = {source}
        stack = [source]
        while stack:
            node = stack.pop()
            for nxt in self._succ[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def reaching(self, target: Hashable) -> set[Hashable]:
        """All nodes from which *target* is reachable (incl. *target*)."""
        seen = {target}
        stack = [target]
        while stack:
            node = stack.pop()
            for nxt in self._pred[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def has_path(self, source: Hashable, target: Hashable) -> bool:
        """True iff a (possibly empty) directed path ``source -> target`` exists."""
        if source == target:
            return True
        return target in self.reachable_from(source)
