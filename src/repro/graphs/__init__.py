"""Dependency-free directed-graph substrate.

Everything the paper's algorithms need from graph theory lives here:
strong connectivity (Theorems 1-2), dominator enumeration (Definition 2,
Theorem 3), priority topological sorts (the Theorem 2 certificate), cycle
enumeration (Proposition 2) and transitive closure/reduction (partial
orders as Hasse diagrams).
"""

from .cycles import has_cycle, simple_cycles
from .digraph import DiGraph
from .downsets import (
    dominators,
    enumerate_ancestor_closed_sets,
    is_dominator,
    some_dominator,
)
from .segtree import MaxSegmentTree
from .scc import condensation, is_strongly_connected, strongly_connected_components
from .topo import (
    CycleError,
    all_topological_sorts,
    find_cycle,
    is_acyclic,
    topological_sort,
)
from .transitive import TransitiveClosure, transitive_closure, transitive_reduction

__all__ = [
    "CycleError",
    "DiGraph",
    "MaxSegmentTree",
    "TransitiveClosure",
    "all_topological_sorts",
    "condensation",
    "dominators",
    "enumerate_ancestor_closed_sets",
    "find_cycle",
    "has_cycle",
    "is_acyclic",
    "is_dominator",
    "is_strongly_connected",
    "simple_cycles",
    "some_dominator",
    "strongly_connected_components",
    "topological_sort",
    "transitive_closure",
    "transitive_reduction",
]
