"""Transitive closure and reduction.

The transaction model needs fast ``precedes(a, b)`` queries over partial
orders with up to a few thousand steps (the ``O(n^2)`` scaling benchmark of
Corollary 1).  The closure is therefore computed as per-node reachability
bitsets packed into Python ints, which makes closure of an ``n``-step DAG
``O(n * m / 64)`` word operations and each query ``O(1)``.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..obs.trace import current_span
from .digraph import DiGraph
from .topo import CycleError, topological_sort


class TransitiveClosure:
    """Reachability oracle for a DAG.

    ``closure.reaches(a, b)`` answers whether there is a *non-empty*
    directed path from ``a`` to ``b`` — i.e. strict precedence in the
    partial-order reading used throughout the paper.
    """

    def __init__(self, graph: DiGraph) -> None:
        try:
            order = topological_sort(graph)
        except CycleError as exc:
            raise CycleError(
                "transitive closure requires an acyclic graph", exc.cycle
            ) from exc
        self._index: dict[Hashable, int] = {
            node: position for position, node in enumerate(order)
        }
        self._nodes = order
        # _mask[i] has bit j set iff node i strictly reaches node j.
        masks = [0] * len(order)
        for node in reversed(order):
            i = self._index[node]
            mask = 0
            for nxt in graph.successors(node):
                j = self._index[nxt]
                mask |= 1 << j
                mask |= masks[j]
            masks[i] = mask
        self._masks = masks
        sp = current_span()
        if sp:
            sp.set(closure_nodes=len(order))

    def reaches(self, a: Hashable, b: Hashable) -> bool:
        """True iff there is a non-empty path from *a* to *b*."""
        return bool(self._masks[self._index[a]] >> self._index[b] & 1)

    def descendants(self, a: Hashable) -> set[Hashable]:
        """All nodes strictly reachable from *a*."""
        mask = self._masks[self._index[a]]
        return {
            node
            for node, position in self._index.items()
            if mask >> position & 1
        }

    def comparable(self, a: Hashable, b: Hashable) -> bool:
        """True iff *a* and *b* are ordered either way (strictly)."""
        return self.reaches(a, b) or self.reaches(b, a)


def transitive_closure(graph: DiGraph) -> DiGraph:
    """Materialize the strict transitive closure of a DAG as arcs."""
    oracle = TransitiveClosure(graph)
    closed = DiGraph(graph.nodes())
    for node in graph.nodes():
        for descendant in oracle.descendants(node):
            closed.add_arc(node, descendant)
    return closed


def transitive_reduction(graph: DiGraph) -> DiGraph:
    """Minimal DAG with the same reachability relation (Hasse diagram).

    Used to draw the paper's figures: the dags in Figs. 1, 3, 5 and 9 are
    Hasse diagrams of the transaction partial orders.
    """
    oracle = TransitiveClosure(graph)
    reduced = DiGraph(graph.nodes())
    for node in graph.nodes():
        successors = graph.successors(node)
        for head in successors:
            # Keep node -> head unless some other successor reaches head.
            redundant = any(
                other != head and oracle.reaches(other, head)
                for other in successors
            )
            if not redundant:
                reduced.add_arc(node, head)
    return reduced
