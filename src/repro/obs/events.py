"""An append-only event log for the lock-manager simulator.

Where spans answer *where did the time go*, the event log answers *what
happened, in what order*: every lock grant, block, release, executed
step and deadlock detection is appended with a logical timestamp (the
log's own monotone sequence number — simulator runs are already
step-granular, so wall clocks would only add noise and nondeterminism).
A non-serializable run replays as a readable timeline, and two runs of
the same system under the same driver seed produce byte-identical logs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator

#: The event kinds the simulator emits.  ``crash`` / ``recover`` /
#: ``abort`` / ``retry`` belong to the fault-injection layer
#: (:mod:`repro.faults`): site/transaction crashes, site recoveries,
#: victim rollbacks and retry wake-ups.  ``msg`` / ``drop`` belong to
#: the cluster runtime (:mod:`repro.cluster`): a delivered protocol
#: message and a network-fault message drop.  ``send`` / ``recv``
#: are the wire view of the same runtime (:mod:`repro.obs.
#: distributed`): one frame leaving or reaching a transport endpoint,
#: with the message kind, byte size and — when a replicated run's
#: shared logical clock is attached — the clock tick in ``detail``.
#: ``elect`` / ``failover`` belong to the replication layer
#: (:mod:`repro.replica`): a replica assuming leadership of its
#: group, and a leader change observed after the previous leader died
#: mid-run.
KINDS = (
    "grant",
    "block",
    "release",
    "step",
    "deadlock",
    "complete",
    "crash",
    "recover",
    "abort",
    "retry",
    "msg",
    "drop",
    "send",
    "recv",
    "elect",
    "failover",
)


@dataclass(frozen=True)
class SimEvent:
    """One timeline entry: a logical timestamp plus who/where/what."""

    seq: int
    kind: str
    transaction: str | None = None
    entity: str | None = None
    site: int | None = None
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-friendly rendering (``None`` fields omitted)."""
        payload: dict = {"seq": self.seq, "kind": self.kind}
        if self.transaction is not None:
            payload["transaction"] = self.transaction
        if self.entity is not None:
            payload["entity"] = self.entity
        if self.site is not None:
            payload["site"] = self.site
        if self.detail:
            payload["detail"] = self.detail
        return payload

    def __str__(self) -> str:
        where = f" s{self.site}" if self.site is not None else ""
        who = f" {self.transaction}" if self.transaction else ""
        what = f" {self.entity}" if self.entity else ""
        tail = f"  ({self.detail})" if self.detail else ""
        return f"[{self.seq:>4}] {self.kind:<8}{who}{what}{where}{tail}"


class EventLog:
    """Append-only, logically timestamped simulator timeline.

    When :attr:`ring` points at a
    :class:`~repro.obs.insight.FlightRecorder`, every emitted event is
    also mirrored into that bounded ring, so a crash post-mortem keeps
    the *recent* timeline even when the full log was never kept.
    """

    def __init__(self) -> None:
        self.events: list[SimEvent] = []
        #: Optional flight-recorder tap (set by the cluster runtime).
        self.ring = None

    def emit(
        self,
        kind: str,
        *,
        transaction: str | None = None,
        entity: str | None = None,
        site: int | None = None,
        detail: str = "",
    ) -> SimEvent:
        """Append (and return) one event; the logical timestamp is the
        log's next sequence number."""
        if kind not in KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        event = SimEvent(
            seq=len(self.events),
            kind=kind,
            transaction=transaction,
            entity=entity,
            site=site,
            detail=detail,
        )
        self.events.append(event)
        if self.ring is not None:
            self.ring.event(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> list[SimEvent]:
        """All events of one *kind*, in order."""
        return [event for event in self.events if event.kind == kind]

    def to_jsonl(self) -> str:
        """One JSON object per line, in timeline order."""
        return "\n".join(
            json.dumps(event.to_dict()) for event in self.events
        ) + ("\n" if self.events else "")

    @classmethod
    def from_jsonl(cls, text: str) -> "EventLog":
        """Rebuild a log from :meth:`to_jsonl` output."""
        log = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            log.events.append(
                SimEvent(
                    seq=record["seq"],
                    kind=record["kind"],
                    transaction=record.get("transaction"),
                    entity=record.get("entity"),
                    site=record.get("site"),
                    detail=record.get("detail", ""),
                )
            )
        return log

    def render(self) -> str:
        """The human-readable timeline, one event per line."""
        lines = [f"timeline: {len(self.events)} events"]
        lines.extend(str(event) for event in self.events)
        return "\n".join(lines)
