"""One funnel for the CLI's human-readable output.

Instead of bare ``print`` scattered through :mod:`repro.cli`, commands
route narration through this module so ``-v``/``--quiet`` work
uniformly:

* :func:`result` — the command's primary product (verdict lines, JSON
  payloads, rendered planes); printed at every verbosity except
  ``--quiet --quiet``;
* :func:`out` — ordinary narration; suppressed by ``--quiet``;
* :func:`info` — extra detail; printed with ``-v``;
* :func:`debug` — printed with ``-vv``;
* :func:`error` — always printed, to stderr.

Verbosity is a module-level integer (default 0; ``-v`` adds one,
``--quiet`` subtracts one).  The stream is resolved at call time
(``sys.stdout``/``sys.stderr``), so pytest's ``capsys`` and shell
redirection both see everything.

:func:`use_json_logging` swaps the funnel onto a structured
:mod:`logging` logger with a JSON formatter — one JSON object per line
with ``level``, ``message`` and a timestamp — for machine-ingested
deployments (``repro --log-json ...``).
"""

from __future__ import annotations

import json
import logging
import sys
import time

_verbosity = 0
_json_logger: logging.Logger | None = None

#: logging levels for the funnel names, used in JSON mode.
_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "out": logging.INFO,
    "result": logging.INFO,
    "error": logging.ERROR,
}


def set_verbosity(level: int) -> None:
    """Set the global verbosity (0 = normal, >0 verbose, <0 quiet)."""
    global _verbosity
    _verbosity = level


def get_verbosity() -> int:
    """The current global verbosity."""
    return _verbosity


class JsonLineFormatter(logging.Formatter):
    """``logging`` formatter emitting one JSON object per record."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(time.time(), 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info and record.exc_info[0] is not None:
            payload["error_type"] = record.exc_info[0].__name__
        return json.dumps(payload)


def get_logger(name: str = "repro") -> logging.Logger:
    """The package's :mod:`logging` logger (plain, unconfigured)."""
    return logging.getLogger(name)


def use_json_logging(stream=None) -> logging.Logger:
    """Route the funnel through a JSON-lines ``logging`` handler."""
    global _json_logger
    logger = get_logger()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLineFormatter())
    logger.handlers = [handler]
    logger.setLevel(logging.DEBUG)
    logger.propagate = False
    _json_logger = logger
    return logger


def use_plain_output() -> None:
    """Back to plain prints (undoes :func:`use_json_logging`)."""
    global _json_logger
    if _json_logger is not None:
        _json_logger.handlers = []
    _json_logger = None


def _emit(channel: str, message: str, *, to_stderr: bool = False) -> None:
    if _json_logger is not None:
        _json_logger.log(_LEVELS[channel], message)
        return
    stream = sys.stderr if to_stderr else sys.stdout
    print(message, file=stream)


def result(message: str = "") -> None:
    """The command's primary product; only ``-qq`` silences it."""
    if _verbosity > -2:
        _emit("result", message)


def out(message: str = "") -> None:
    """Ordinary narration; suppressed by ``--quiet``."""
    if _verbosity > -1:
        _emit("out", message)


def info(message: str = "") -> None:
    """Extra detail; printed with ``-v``."""
    if _verbosity >= 1:
        _emit("info", message)


def debug(message: str = "") -> None:
    """Diagnostics; printed with ``-vv``."""
    if _verbosity >= 2:
        _emit("debug", message)


def error(message: str = "") -> None:
    """Problems; always printed, to stderr."""
    _emit("error", message, to_stderr=True)
