"""The insight tier: flight recorder, live status plane, contention.

Third observability layer, after local spans/metrics (:mod:`repro.obs.
trace`, PR 2) and cross-process tracing (:mod:`repro.obs.distributed`,
PR 7).  Three instruments, all designed to be *on in production*:

**Flight recorder.**  :class:`FlightRecorder` is a bounded ring of the
most recent observability happenings in one process — wire sends and
receives (fed by :data:`repro.obs.distributed.WIRE`) plus simulator
events (mirrored by :class:`repro.obs.events.EventLog` when its
``ring`` tap is set).  Recording is two dict writes per entry and the
ring never grows, so it stays near-free while the cluster is healthy;
when a run ends non-serializable, partial-commit or audit-incomplete,
the runtime dumps the ring — with the report and any trace files —
into a post-mortem bundle (:func:`dump_postmortem`) that ``repro
postmortem DIR`` renders (:func:`render_postmortem`).  Ring entries
carry no wall-clock fields, so a memory-transport run records a
bit-deterministic ring.

**Status plane.**  Site servers answer ``status`` / ``inspect``
protocol requests with their live lock table (holders, FIFO wait
queues, grant-timer deadlines) and local wait-for edges; replicas add
lease/epoch/log state.  :func:`wait_for_graph` stitches the per-site
edges into the global wait-for digraph (:class:`repro.graphs.DiGraph`)
and :func:`deadlock_cycles` enumerates its cycles — external deadlock
detection that cross-checks the runtime's edge-chasing probes from
outside the coordinator.  :func:`probe_sites` drives the probes over
any transport; ``repro cluster status`` renders the assembled
:class:`ClusterStatus`.

**Contention analytics.**  :class:`ContentionTally` keeps cheap
per-entity counters inside every site server (grants, waits, queue
depths, wait-time samples); :func:`contention_from_records` derives
the same ranking from merged ``site.lock_wait`` trace spans, plus
convoy and starvation detection.  Both surface through
:func:`render_contention`, ``repro trace-report --contention``,
``ClusterReport.contention`` and each arena cell's hottest keys —
the per-entity heat the ROADMAP's sharding work needs.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Any, Iterable

from .. import stats
from ..graphs import DiGraph, simple_cycles

#: Default ring capacity: enough to reconstruct the last few hundred
#: protocol exchanges without ever holding more than ~100 KB.
RING_CAPACITY = 512

#: Bounded per-entity sample reservoirs inside a tally.
SAMPLE_CAP = 2048

#: Overlapping waiters on one entity at or past this depth is a convoy.
CONVOY_DEPTH = 3

#: A wait this many times the entity's median wait flags starvation.
STARVATION_RATIO = 8.0


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class FlightRecorder:
    """A bounded ring buffer of recent observability records.

    Entries are plain dicts — ``{"seq": n, "kind": ...}`` plus
    kind-specific fields — appended via :meth:`record` or the
    :meth:`wire` / :meth:`event` adapters.  Once ``capacity`` entries
    exist, the oldest is overwritten (``dropped`` counts the losses).
    Entries deliberately carry no wall-clock values: under the memory
    transport the ring contents are a pure function of the workload
    and seed.
    """

    def __init__(self, capacity: int = RING_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: list[dict[str, Any]] = []
        self._next = 0
        #: Total records ever offered (monotone, survives wraparound).
        self.seq = 0
        #: Records overwritten by wraparound.
        self.dropped = 0

    def record(self, kind: str, **fields: Any) -> None:
        """Append one entry (overwriting the oldest at capacity)."""
        entry: dict[str, Any] = {"seq": self.seq, "kind": kind}
        entry.update(fields)
        self._append(entry)

    def _append(self, entry: dict[str, Any]) -> None:
        self.seq += 1
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(entry)
        else:
            ring[self._next] = entry
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    # -- adapters ------------------------------------------------------
    def wire(self, direction: str, message: dict, nbytes: int, site) -> None:
        """One frame moved (``direction`` is ``send`` or ``recv``).

        This runs once per wire frame — the recorder's entire cost in a
        run is ~this method, so it builds one dict literal and inlines
        the ring bookkeeping rather than going through :meth:`record`
        (E18 gates the difference against the observability budget).
        """
        get = message.get
        entry = {
            "seq": self.seq,
            "kind": direction,
            "type": get("type"),
            "id": get("id"),
            "txn": get("txn"),
            "bytes": nbytes,
            "site": site if isinstance(site, int) else None,
        }
        self.seq += 1
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(entry)
        else:
            ring[self._next] = entry
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    def event(self, event) -> None:
        """Mirror one :class:`~repro.obs.events.SimEvent`."""
        payload = event.to_dict()
        self.record(
            "event",
            event_seq=payload.pop("seq", None),
            event_kind=payload.pop("kind", None),
            **payload,
        )

    # -- inspection ----------------------------------------------------
    def snapshot(self) -> list[dict[str, Any]]:
        """The retained entries, oldest first."""
        return self._ring[self._next :] + self._ring[: self._next]

    def clear(self) -> None:
        self._ring = []
        self._next = 0
        self.seq = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    def to_jsonl(self) -> str:
        """One JSON object per line, oldest first."""
        entries = self.snapshot()
        return "\n".join(
            json.dumps(entry, sort_keys=True) for entry in entries
        ) + ("\n" if entries else "")


# ----------------------------------------------------------------------
# Contention analytics
# ----------------------------------------------------------------------
def _sample(samples: list, count: int, value) -> None:
    """Bounded reservoir: deterministic modulo replacement at the cap."""
    if len(samples) < SAMPLE_CAP:
        samples.append(value)
    else:
        samples[count % SAMPLE_CAP] = value


def _ms(ns: float | int | None) -> float | None:
    return None if ns is None else round(ns / 1e6, 3)


class ContentionTally:
    """Cheap always-on per-entity lock-contention counters.

    A site server feeds it from the lock path — :meth:`granted` on an
    immediate grant, :meth:`blocked` when a request queues (with the
    queue depth it found), :meth:`waited` when the wait resolves (with
    the measured nanoseconds and the outcome).  Each call is a couple
    of dict operations; wait/depth samples live in bounded reservoirs.
    """

    def __init__(self) -> None:
        self._rows: dict[str, dict[str, Any]] = {}

    def _row(self, entity: str) -> dict[str, Any]:
        row = self._rows.get(entity)
        if row is None:
            row = self._rows[entity] = {
                "grants": 0,
                "waits": 0,
                "denied": 0,
                "wait_count": 0,
                "wait_ns_total": 0,
                "wait_ns_max": 0,
                "wait_samples": [],
                "depth_max": 0,
                "depth_samples": [],
            }
        return row

    def granted(self, entity: str) -> None:
        """An immediately granted lock request."""
        self._row(entity)["grants"] += 1

    def blocked(self, entity: str, depth: int) -> None:
        """A request queued behind *depth* earlier waiters."""
        row = self._row(entity)
        row["waits"] += 1
        row["depth_max"] = max(row["depth_max"], depth)
        _sample(row["depth_samples"], row["waits"], depth)

    def waited(self, entity: str, ns: int, result: str = "granted") -> None:
        """A queued wait resolved after *ns* nanoseconds."""
        row = self._row(entity)
        row["wait_count"] += 1
        row["wait_ns_total"] += int(ns)
        row["wait_ns_max"] = max(row["wait_ns_max"], int(ns))
        if result != "granted":
            row["denied"] += 1
        _sample(row["wait_samples"], row["wait_count"], int(ns))

    def merge(self, other: "ContentionTally") -> None:
        """Fold *other*'s counters into this tally (summing counts,
        keeping maxima, concatenating bounded samples)."""
        for entity, theirs in other._rows.items():
            row = self._row(entity)
            for key in ("grants", "waits", "denied", "wait_count",
                        "wait_ns_total"):
                row[key] += theirs[key]
            row["wait_ns_max"] = max(row["wait_ns_max"], theirs["wait_ns_max"])
            row["depth_max"] = max(row["depth_max"], theirs["depth_max"])
            for key in ("wait_samples", "depth_samples"):
                for value in theirs[key]:
                    if len(row[key]) >= SAMPLE_CAP:
                        break
                    row[key].append(value)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def rows(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Hot-lock ranking: one row per entity, most-contended first
        (by wait count, then total wait time, then entity name — the
        count-first key keeps memory-transport rankings deterministic
        even though the sampled times are wall-clock)."""
        out = []
        for entity, row in self._rows.items():
            out.append(
                {
                    "entity": entity,
                    "grants": row["grants"],
                    "waits": row["waits"],
                    "denied": row["denied"],
                    "wait_ms_p50": _ms(stats.percentile(row["wait_samples"], 50)),
                    "wait_ms_p95": _ms(stats.percentile(row["wait_samples"], 95)),
                    "wait_ms_max": _ms(row["wait_ns_max"]) if row["wait_count"] else None,
                    "queue_depth_max": row["depth_max"],
                    "queue_depth_p95": stats.percentile(row["depth_samples"], 95),
                }
            )
        out.sort(key=lambda r: (-r["waits"], -(r["wait_ms_max"] or 0), r["entity"]))
        return out[:limit] if limit is not None else out


#: Span name of a queued lock wait (see ``SiteServer._finish_wait``).
LOCK_WAIT_SPAN = "site.lock_wait"


def contention_from_records(
    records: Iterable[dict[str, Any]],
) -> list[dict[str, Any]]:
    """Hot-lock rows from merged trace records: group ``site.lock_wait``
    spans by entity, rank by summed wait, compute wait percentiles and
    peak overlap depth, and flag convoys (``>=`` :data:`CONVOY_DEPTH`
    simultaneous waiters) and starved waits (a wait longer than
    :data:`STARVATION_RATIO` x the entity's median)."""
    waits: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        if record.get("span") != LOCK_WAIT_SPAN:
            continue
        attrs = record.get("attrs", {})
        entity = attrs.get("entity")
        if entity is None:
            continue
        waits.setdefault(str(entity), []).append(
            {
                "start_ns": record.get("start_ns", 0),
                "dur_ns": record.get("dur_ns", 0),
                "pid": record.get("pid", 0),
                "txn": attrs.get("txn"),
                "result": attrs.get("result", "granted"),
            }
        )

    rows = []
    for entity, spans in waits.items():
        durations = [span["dur_ns"] for span in spans]
        median = stats.percentile(durations, 50) or 0.0
        starved = sorted(
            {
                str(span["txn"])
                for span in spans
                if span["txn"] is not None
                and median > 0
                and span["dur_ns"] > STARVATION_RATIO * median
            }
        )
        # Peak queue depth: sweep the wait intervals per process (span
        # clocks are only comparable within one pid).
        depth_max = 0
        by_pid: dict[int, list[tuple[int, int]]] = {}
        for span in spans:
            by_pid.setdefault(span["pid"], []).append(
                (span["start_ns"], span["start_ns"] + span["dur_ns"])
            )
        for intervals in by_pid.values():
            points = sorted(
                [(start, 1) for start, _ in intervals]
                + [(end, -1) for _, end in intervals]
            )
            depth = 0
            for _, delta in points:
                depth += delta
                depth_max = max(depth_max, depth)
        rows.append(
            {
                "entity": entity,
                "waits": len(spans),
                "denied": sum(
                    1 for span in spans if span["result"] != "granted"
                ),
                "wait_ms_p50": _ms(stats.percentile(durations, 50)),
                "wait_ms_p95": _ms(stats.percentile(durations, 95)),
                "wait_ms_max": _ms(max(durations)) if durations else None,
                "queue_depth_max": depth_max,
                "convoy": depth_max >= CONVOY_DEPTH,
                "starved": starved,
            }
        )
    rows.sort(
        key=lambda r: (-r["waits"], -(r["wait_ms_max"] or 0), r["entity"])
    )
    return rows


def render_contention(
    rows: list[dict[str, Any]], *, limit: int = 10
) -> str:
    """Fixed-width rendering of contention rows (either flavour)."""
    if not rows:
        return "contention: no lock waits recorded"
    shown = rows[:limit]

    def cell(row: dict, key: str) -> str:
        value = row.get(key)
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    headers = (
        "entity", "waits", "denied", "p50 ms", "p95 ms", "max ms", "depth"
    )
    keys = (
        "entity", "waits", "denied", "wait_ms_p50", "wait_ms_p95",
        "wait_ms_max", "queue_depth_max",
    )
    cells = []
    for row in shown:
        line = [cell(row, key) for key in keys]
        flags = []
        if row.get("convoy"):
            flags.append("convoy")
        if row.get("starved"):
            flags.append("starved:" + ",".join(row["starved"][:3]))
        cells.append(line + [" ".join(flags)])
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        for i in range(len(headers))
    ]
    lines = [f"contention: {len(rows)} contended entit(ies)"]
    lines.append(
        "  "
        + headers[0].ljust(widths[0])
        + "  "
        + "  ".join(h.rjust(w) for h, w in zip(headers[1:], widths[1:]))
        + "  flags"
    )
    for row in cells:
        lines.append(
            "  "
            + row[0].ljust(widths[0])
            + "  "
            + "  ".join(c.rjust(w) for c, w in zip(row[1:-1], widths[1:]))
            + (f"  {row[-1]}" if row[-1] else "")
        )
    if len(rows) > limit:
        lines.append(f"  ... {len(rows) - limit} more entit(ies)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Status plane: probe, stitch, detect
# ----------------------------------------------------------------------
def wait_for_graph(statuses: Iterable[dict[str, Any]]) -> DiGraph:
    """Stitch per-site ``wait_for`` edge lists into the global
    wait-for digraph (waiter -> the transaction it waits behind)."""
    graph = DiGraph()
    for status in statuses:
        for edge in status.get("wait_for", ()):
            try:
                waiter, blocker = edge
            except (TypeError, ValueError):
                continue
            graph.add_node(waiter)
            graph.add_node(blocker)
            if not graph.has_arc(waiter, blocker):
                graph.add_arc(waiter, blocker)
    return graph


def deadlock_cycles(
    graph: DiGraph, *, limit: int | None = 16
) -> list[list[Any]]:
    """The simple cycles of the stitched wait-for graph — each one a
    deadlock no single site could see."""
    return [list(cycle) for cycle in simple_cycles(graph, limit=limit)]


class ClusterStatus:
    """One assembled snapshot of a live cluster."""

    def __init__(
        self,
        sites: list[dict[str, Any]],
        coordinators: list[dict[str, Any]] | None = None,
    ) -> None:
        self.sites = list(sites)
        self.coordinators = list(coordinators or [])

    @property
    def errors(self) -> list[dict[str, Any]]:
        return [site for site in self.sites if site.get("error")]

    @property
    def graph(self) -> DiGraph:
        return wait_for_graph(
            site for site in self.sites if not site.get("error")
        )

    @property
    def cycles(self) -> list[list[Any]]:
        return deadlock_cycles(self.graph)

    def to_dict(self) -> dict[str, Any]:
        graph = self.graph
        return {
            "sites": self.sites,
            "coordinators": self.coordinators,
            "wait_for": [[tail, head] for tail, head in graph.arcs()],
            "cycles": self.cycles,
        }

    def render(self) -> str:
        lines = [
            f"cluster status: {len(self.sites)} probe(s), "
            f"{len(self.errors)} error(s)"
        ]
        for site in self.sites:
            if site.get("error"):
                lines.append(f"site {site.get('site', '?')}  UNREACHABLE: {site['error']}")
                continue
            role = site.get("role", "site")
            head = (
                f"site {site.get('site', '?')}  [{role}]  "
                f"processed={site.get('processed', 0)} "
                f"locks={len(site.get('lock_table', []))} "
                f"waiting={len(site.get('pending', []))} "
                f"committed={site.get('committed', 0)}"
            )
            if role != "site":
                head += (
                    f" epoch={site.get('epoch')}"
                    f" leader={site.get('leader')}"
                    f" log_seq={site.get('log_seq')}"
                )
                if site.get("lag") is not None:
                    head += f" lag={site.get('lag')}"
                if site.get("lease_expired"):
                    head += " LEASE-EXPIRED"
            lines.append(head)
            for entry in site.get("lock_table", []):
                waiters = entry.get("waiters") or []
                lines.append(
                    f"  lock {entry.get('entity')}: "
                    f"holder={entry.get('holder')}"
                    + (f" waiters={','.join(map(str, waiters))}" if waiters else "")
                )
            for entry in site.get("pending", []):
                lines.append(
                    f"  pending {entry.get('txn')} -> {entry.get('entity')}"
                    f"  age={entry.get('age')}"
                    + (" timer=armed" if entry.get("timer") else "")
                )
            rows = site.get("contention") or []
            if rows:
                hot = ", ".join(
                    f"{row['entity']}({row['waits']} waits)"
                    for row in rows[:3]
                )
                lines.append(f"  hot: {hot}")
        for coordinator in self.coordinators:
            lines.append(
                f"coordinator {coordinator.get('transaction')}  "
                f"phase={coordinator.get('phase')} "
                f"attempt={coordinator.get('attempt')} "
                f"pending={','.join(coordinator.get('pending_steps', [])) or '-'}"
            )
        graph = self.graph
        arcs = graph.arcs()
        lines.append(
            f"global wait-for graph: {graph.node_count()} transaction(s), "
            f"{len(arcs)} edge(s)"
        )
        for tail, head in arcs:
            lines.append(f"  {tail} -> {head}")
        cycles = self.cycles
        if cycles:
            lines.append(f"DEADLOCK: {len(cycles)} cycle(s) detected")
            for cycle in cycles:
                lines.append(
                    "  " + " -> ".join(map(str, cycle + cycle[:1]))
                )
        else:
            lines.append("no wait-for cycles: cluster is deadlock-free now")
        return "\n".join(lines)


async def probe_site(transport, site: int, *, timeout: float = 5.0) -> dict:
    """Send one ``status`` request to *site* over *transport* and
    return the payload (or ``{"site": site, "error": ...}``)."""
    import asyncio

    from ..cluster import protocol

    try:
        connection = await transport.connect(site)
    except Exception as exc:
        return {"site": site, "error": str(exc)}
    try:
        await connection.send(protocol.request("status", 1))
        reply = await asyncio.wait_for(connection.recv(), timeout)
        if not isinstance(reply, dict):
            return {"site": site, "error": "connection closed mid-probe"}
        reply.pop("id", None)
        reply.pop("wire", None)
        reply.setdefault("site", site)
        return reply
    except Exception as exc:
        return {"site": site, "error": str(exc) or type(exc).__name__}
    finally:
        try:
            await connection.close()
        except Exception:
            pass


async def probe_sites(
    transport, sites: Iterable[int], *, timeout: float = 5.0
) -> ClusterStatus:
    """Probe every site address and assemble a :class:`ClusterStatus`."""
    statuses = []
    for site in sites:
        statuses.append(await probe_site(transport, site, timeout=timeout))
    return ClusterStatus(statuses)


# ----------------------------------------------------------------------
# Post-mortem bundles
# ----------------------------------------------------------------------
def postmortem_reason(report) -> str | None:
    """Why this run deserves an autopsy (``None`` when it was clean)."""
    if not report.serializable:
        return "non-serializable"
    if report.partial_commits:
        return "partial-commit"
    if not report.audit_complete:
        return "audit-incomplete"
    return None


def dump_postmortem(
    directory,
    *,
    report=None,
    recorder: FlightRecorder | None = None,
    event_log=None,
    trace_paths: Iterable[str] = (),
    reason: str | None = None,
) -> str:
    """Write a post-mortem bundle into *directory* (created if needed):
    ``MANIFEST.json`` plus ``report.json`` / ``flight.jsonl`` /
    ``events.jsonl`` and copies of *trace_paths* under ``traces/``.
    Returns the bundle path."""
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    manifest: dict[str, Any] = {"bundle": 1, "reason": reason}

    if report is not None:
        payload = report.to_dict()
        with open(
            os.path.join(directory, "report.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        manifest["report"] = True
    if recorder is not None:
        with open(
            os.path.join(directory, "flight.jsonl"), "w", encoding="utf-8"
        ) as handle:
            handle.write(recorder.to_jsonl())
        manifest["flight_records"] = len(recorder)
        manifest["flight_seq"] = recorder.seq
        manifest["flight_dropped"] = recorder.dropped
    if event_log is not None and len(event_log):
        with open(
            os.path.join(directory, "events.jsonl"), "w", encoding="utf-8"
        ) as handle:
            handle.write(event_log.to_jsonl())
        manifest["events"] = len(event_log)

    copied = []
    for path in trace_paths:
        path = os.fspath(path)
        if not path or not os.path.exists(path):
            continue
        target_dir = os.path.join(directory, "traces")
        os.makedirs(target_dir, exist_ok=True)
        target = os.path.join(target_dir, os.path.basename(path))
        try:
            shutil.copyfile(path, target)
        except OSError:
            continue
        copied.append(os.path.basename(path))
    if copied:
        manifest["traces"] = copied

    with open(
        os.path.join(directory, "MANIFEST.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return directory


def load_postmortem(directory) -> dict[str, Any]:
    """Read a bundle back: manifest, report dict, flight entries (bad
    lines skipped — a producer may have died mid-write), event count
    and trace records."""
    directory = os.fspath(directory)
    manifest_path = os.path.join(directory, "MANIFEST.json")
    if not os.path.isfile(manifest_path):
        raise ValueError(f"{directory}: not a post-mortem bundle (no MANIFEST.json)")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)

    bundle: dict[str, Any] = {"directory": directory, "manifest": manifest}

    report_path = os.path.join(directory, "report.json")
    if os.path.isfile(report_path):
        try:
            with open(report_path, encoding="utf-8") as handle:
                bundle["report"] = json.load(handle)
        except ValueError:
            bundle["report"] = None

    flight_path = os.path.join(directory, "flight.jsonl")
    entries: list[dict[str, Any]] = []
    skipped = 0
    if os.path.isfile(flight_path):
        with open(flight_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    skipped += 1
    bundle["flight"] = entries
    bundle["flight_skipped"] = skipped

    traces_dir = os.path.join(directory, "traces")
    trace_records: list[dict[str, Any]] = []
    trace_skipped: list[str] = []
    if os.path.isdir(traces_dir):
        from .distributed import merge_traces

        paths = sorted(
            os.path.join(traces_dir, name)
            for name in os.listdir(traces_dir)
        )
        trace_records = merge_traces(
            paths,
            on_skip=lambda p, n, why: trace_skipped.append(f"{p}:{n}"),
        )
    bundle["trace_records"] = trace_records
    bundle["trace_skipped"] = trace_skipped
    return bundle


def render_postmortem(directory, *, tail: int = 20) -> str:
    """Human-readable rendering of a post-mortem bundle."""
    bundle = load_postmortem(directory)
    manifest = bundle["manifest"]
    lines = [
        f"post-mortem bundle {bundle['directory']}: "
        f"reason={manifest.get('reason', 'unknown')}"
    ]

    report = bundle.get("report")
    if report:
        lines.append(
            f"run: mode={report.get('mode')} "
            f"transactions={report.get('transactions')} "
            f"committed={report.get('committed')} "
            f"serializable={report.get('serializable')} "
            f"audit_complete={report.get('audit_complete')}"
        )
        unreachable = report.get("unreachable_sites")
        if unreachable:
            lines.append(f"unreachable sites: {unreachable}")
        bad = [
            outcome
            for outcome in report.get("outcomes", [])
            if outcome.get("outcome") != "committed"
        ]
        for outcome in bad[:10]:
            lines.append(
                f"  {outcome.get('name')}: {outcome.get('outcome')}"
                + (
                    f" ({outcome.get('detail')})"
                    if outcome.get("detail")
                    else ""
                )
            )
        if len(bad) > 10:
            lines.append(f"  ... {len(bad) - 10} more non-committed outcome(s)")
        rows = report.get("contention") or []
        if rows:
            lines.append(render_contention(rows, limit=5))

    flight = bundle["flight"]
    if flight:
        dropped = manifest.get("flight_dropped", 0)
        lines.append(
            f"flight recorder: {len(flight)} record(s) retained"
            + (f", {dropped} older overwritten" if dropped else "")
            + (
                f", {bundle['flight_skipped']} corrupt line(s) skipped"
                if bundle["flight_skipped"]
                else ""
            )
        )
        for entry in flight[-tail:]:
            kind = entry.get("kind", "?")
            if kind == "event" and entry.get("event_kind"):
                kind = f"ev:{entry['event_kind']}"
            detail = " ".join(
                f"{key}={entry[key]}"
                for key in ("type", "txn", "transaction", "entity", "site",
                            "bytes", "detail")
                if entry.get(key) not in (None, "")
            )
            lines.append(f"  [{entry.get('seq', '?'):>6}] {kind:<6} {detail}".rstrip())

    records = bundle["trace_records"]
    if records:
        contention = contention_from_records(records)
        lines.append(
            f"traces: {len(records)} span(s) from "
            f"{len(manifest.get('traces', []))} file(s)"
            + (
                f", skipped {len(bundle['trace_skipped'])} bad line(s)"
                if bundle["trace_skipped"]
                else ""
            )
        )
        if contention:
            lines.append(render_contention(contention, limit=5))
    return "\n".join(lines)
