"""Cross-process distributed tracing and wire-latency decomposition.

The per-process tracer (:mod:`repro.obs.trace`) stops at process
boundaries; this module carries trace causality and latency stamps
*across* them for the cluster runtime (:mod:`repro.cluster`) and its
replicated sibling (:mod:`repro.replica`):

**Trace-context propagation.**  A coordinator opens one root span per
distributed transaction (:func:`txn_span`, with a process-unique
``trace_id``) and one child span per issued step; the step's context —
``{"id": trace_id, "span": span_id, "pid": pid}`` — rides inside the
request as the optional ``trace`` field of the wire protocol.  A site
server that finds the field opens a **remote-parented** span
(:func:`remote_span`) around its handler, and re-injects the same
context into the messages it sends onward (deadlock probes, resolve
notices, replication ships), so the spans of one transaction form one
causal tree even when every hop ran in a different process.  Messages
*without* the field decode and serve exactly as before — old and new
nodes interoperate.

**Wire-latency decomposition.**  While the :data:`WIRE` observer is
active, every frame a transport sends is stamped (the ``wire`` field:
wall-clock ``send_ns``; the receiver adds ``recv_ns``) and every
endpoint feeds per-stage nanosecond histograms
(``repro_cluster_latency_ns{stage=...,site=...}``) plus per-kind
``repro_cluster_messages_total`` / ``repro_cluster_bytes_total``
counters.  The five stages:

========      ==========================================================
stage         measured as
========      ==========================================================
encode        sender-side: nanoseconds spent JSON-encoding one frame
transport     ``recv_ns - send_ns`` (wall clock; includes the sender's
              encode and queue/socket dwell)
server_queue  handler start minus ``recv_ns`` at the serving site
lock_wait     lock-request queue time, block to grant (0 when granted
              immediately)
hold          grant to unlock/release of one entity's lock
========      ==========================================================

**Merge model.**  Each process traces into its own JSONL file; the
collector (:func:`merge_traces` + :func:`trace_trees`) concatenates
the files and groups spans by ``trace_id``, resolving parents by
``(pid, span_id)`` so remote links land on the right span.  ``repro
trace-report FILE [FILE ...]`` renders the result: slowest-transaction
trees, a per-stage percentile table (:func:`stage_rows`), and
election/failover annotations from ``replica.*`` spans.

Everything here is off by default: with the observer disabled and
tracing off, the hooks cost one attribute load and a falsy branch per
message.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Any

from .. import stats
from . import trace
from .metrics import REGISTRY

#: The wire-latency stages, in per-step causal order.
STAGES = ("encode", "transport", "server_queue", "lock_wait", "hold")

#: Nanosecond-scale buckets for ``repro_cluster_latency_ns``: 1us..1s.
LATENCY_BUCKETS = (
    1e3,
    1e4,
    1e5,
    5e5,
    1e6,
    5e6,
    1e7,
    5e7,
    1e8,
    1e9,
)

_trace_ids = itertools.count(1)


def new_trace_id(name: str) -> str:
    """A process-unique trace id for the transaction *name*."""
    return f"{name}#{os.getpid()}.{next(_trace_ids)}"


# ----------------------------------------------------------------------
# Trace-context propagation
# ----------------------------------------------------------------------


def txn_span(name: str):
    """The root span of one distributed transaction (a fresh
    ``trace_id``); :data:`~repro.obs.trace.NULL_SPAN` while tracing is
    off.  Detached, so concurrent coordinators in one event loop never
    adopt each other's children."""
    return trace.detached_span("txn.run", trace_id=new_trace_id(name))


def child_span(name: str, parent):
    """A detached child of the local span *parent* (``None``/falsy
    parent or disabled tracing yields the null span)."""
    if not parent:
        return trace.NULL_SPAN
    return trace.detached_span(name, parent=parent)


def remote_span(name: str, context: dict | None):
    """A detached span whose parent is the span named by the wire
    *context* (as produced by :func:`context_of`, possibly in another
    process); the null span when tracing is off or *context* is
    ``None``."""
    if context is None:
        return trace.NULL_SPAN
    try:
        parent = (int(context["pid"]), int(context["span"]))
        trace_id = str(context["id"])
    except (KeyError, TypeError, ValueError):
        return trace.NULL_SPAN
    return trace.detached_span(name, trace_id=trace_id, parent=parent)


def context_of(span) -> dict | None:
    """The wire form of an **entered** span — the value of a message's
    ``trace`` field — or ``None`` for the null span or a span without
    a ``trace_id``."""
    if not span or getattr(span, "trace_id", None) is None:
        return None
    return {"id": span.trace_id, "span": span.span_id, "pid": trace.tracer_pid()}


def extract(message: dict) -> dict | None:
    """The ``trace`` context carried by *message*, or ``None`` (absent
    or malformed contexts are tolerated — old senders interoperate)."""
    context = message.get("trace")
    if isinstance(context, dict) and "id" in context and "span" in context:
        return context
    return None


# ----------------------------------------------------------------------
# The wire observer: stamps, stage metrics, send/recv events
# ----------------------------------------------------------------------


class WireObserver:
    """Process-global switchboard for wire-level observability.

    Four independently attachable sinks:

    * **metrics** (:meth:`enable_metrics`) — per-stage latency
      histograms and byte/message counters in the default registry;
    * **events** (:meth:`attach`) — ``send``/``recv`` entries on a
      :class:`~repro.obs.events.EventLog` (with the shared logical
      clock tick when a replicated run attaches one);
    * **recorder** (:meth:`attach_recorder`) — every send/recv lands
      in the bounded :class:`~repro.obs.insight.FlightRecorder` ring,
      the raw material of post-mortem bundles;
    * **tracing** — implicit: stamps are also added whenever the
      process tracer is on, so remote spans can carry stage attributes.

    While nothing is attached, :attr:`active` is ``False`` and the
    transports skip every hook after one falsy check.
    """

    def __init__(self) -> None:
        self.metrics_enabled = False
        self.event_log = None
        self.clock = None
        self.recorder = None

    @property
    def active(self) -> bool:
        """Must frames be stamped and measured at all?"""
        return (
            self.metrics_enabled
            or self.event_log is not None
            or self.recorder is not None
            or trace.tracing_enabled()
        )

    def enable_metrics(self) -> None:
        """Start feeding the stage histograms and byte counters."""
        self.metrics_enabled = True

    def disable_metrics(self) -> None:
        """Stop feeding the metrics registry."""
        self.metrics_enabled = False

    def attach(self, event_log, clock=None) -> None:
        """Emit ``send``/``recv`` events onto *event_log* (with
        *clock* ticks in the detail when given)."""
        self.event_log = event_log
        self.clock = clock

    def detach(self) -> None:
        """Stop emitting wire events."""
        self.event_log = None
        self.clock = None

    def attach_recorder(self, recorder) -> None:
        """Feed every send/recv into *recorder* (a
        :class:`~repro.obs.insight.FlightRecorder`)."""
        self.recorder = recorder

    def detach_recorder(self) -> None:
        """Stop feeding the flight recorder."""
        self.recorder = None

    # -- metric handles (resolved by name so registry resets stick) ----
    def _latency(self):
        return REGISTRY.histogram(
            "repro_cluster_latency_ns",
            "Per-stage wire latency of cluster messages, in nanoseconds.",
            buckets=LATENCY_BUCKETS,
        )

    def _bytes(self):
        return REGISTRY.counter(
            "repro_cluster_bytes_total",
            "Encoded frame bytes moved by cluster transports.",
        )

    def _messages(self):
        return REGISTRY.counter(
            "repro_cluster_messages_total",
            "Frames moved by cluster transports, by message kind.",
        )

    def _batched_steps(self):
        return REGISTRY.counter(
            "repro_cluster_batched_steps_total",
            "Transaction steps carried inside batch frames.",
        )

    def observe(self, stage: str, ns: float, site) -> None:
        """Record one *stage* latency sample (no-op unless metrics are
        enabled)."""
        if self.metrics_enabled:
            self._latency().labels(stage=stage, site=str(site)).observe(
                float(max(0, ns))
            )

    # -- transport hooks ----------------------------------------------
    def stamp(self, message: dict) -> dict:
        """A shallow copy of *message* carrying the sender's wire
        stamp (call only while :attr:`active`)."""
        stamped = dict(message)
        stamped["wire"] = {"send_ns": time.time_ns()}
        return stamped

    def _event(self, kind: str, message: dict, nbytes: int, site) -> None:
        detail = f"{message.get('type', '?')} {nbytes}B"
        steps = message.get("steps")
        if isinstance(steps, list) and message.get("type") == "batch":
            detail += f" steps={len(steps)}"
        if self.clock is not None:
            detail += f" clock={self.clock.now}"
        self.event_log.emit(
            kind,
            transaction=message.get("txn"),
            site=site if isinstance(site, int) else None,
            detail=detail,
        )

    def sent(self, message: dict, nbytes: int, encode_ns: int, site) -> None:
        """One frame left an endpoint: record the encode stage, the
        byte counter and (when attached) a ``send`` event."""
        if self.metrics_enabled:
            self.observe("encode", encode_ns, site)
            kind = message.get("type", "?")
            self._bytes().labels(
                site=str(site), kind=kind, direction="sent"
            ).inc(nbytes)
            self._messages().labels(
                site=str(site), kind=kind, direction="sent"
            ).inc()
            if kind == "batch":
                # Attribute the frame to the steps it carries, so
                # messages-per-step comparisons across batched and
                # unbatched runs stay honest.
                steps = message.get("steps")
                if isinstance(steps, list) and steps:
                    self._batched_steps().labels(
                        site=str(site), direction="sent"
                    ).inc(len(steps))
        if self.event_log is not None:
            self._event("send", message, nbytes, site)
        if self.recorder is not None:
            self.recorder.wire("send", message, nbytes, site)

    def received(self, message: dict, nbytes: int, site) -> None:
        """One frame reached an endpoint: complete the wire stamp,
        record the transport stage, the byte counter and (when
        attached) a ``recv`` event."""
        now = time.time_ns()
        wire = message.get("wire")
        if isinstance(wire, dict):
            send_ns = wire.get("send_ns")
            if isinstance(send_ns, int):
                self.observe("transport", now - send_ns, site)
            wire["recv_ns"] = now
        if self.metrics_enabled:
            kind = message.get("type", "?")
            self._bytes().labels(
                site=str(site), kind=kind, direction="received"
            ).inc(nbytes)
            self._messages().labels(
                site=str(site), kind=kind, direction="received"
            ).inc()
            if kind == "batch":
                steps = message.get("steps")
                if isinstance(steps, list) and steps:
                    self._batched_steps().labels(
                        site=str(site), direction="received"
                    ).inc(len(steps))
        if self.event_log is not None:
            self._event("recv", message, nbytes, site)
        if self.recorder is not None:
            self.recorder.wire("recv", message, nbytes, site)


#: The process-global wire observer every transport consults.
WIRE = WireObserver()


def server_queue_ns(message: dict) -> int | None:
    """Nanoseconds *message* sat between transport receive and handler
    start (``None`` when the frame carried no stamp)."""
    wire = message.get("wire")
    if isinstance(wire, dict):
        recv_ns = wire.get("recv_ns")
        if isinstance(recv_ns, int):
            return max(0, time.time_ns() - recv_ns)
    return None


def transport_ns(message: dict) -> int | None:
    """The stamped transport latency of *message* (``recv_ns -
    send_ns``), or ``None`` without a complete stamp."""
    wire = message.get("wire")
    if isinstance(wire, dict):
        send_ns, recv_ns = wire.get("send_ns"), wire.get("recv_ns")
        if isinstance(send_ns, int) and isinstance(recv_ns, int):
            return max(0, recv_ns - send_ns)
    return None


# ----------------------------------------------------------------------
# The collector: merge per-process traces, build causal trees
# ----------------------------------------------------------------------


def merge_traces(paths, *, on_skip=None) -> list[dict[str, Any]]:
    """Concatenate the records of several per-process JSONL trace
    files.  Malformed or truncated lines — a crash-killed producer
    leaves a partial final line — are skipped, invoking *on_skip(path,
    lineno, reason)* when given, so post-mortem bundles always load."""
    from .report import load_trace

    records: list[dict[str, Any]] = []
    for path in paths:
        records.extend(load_trace(str(path), strict=False, on_skip=on_skip))
    return records


class TraceTree:
    """The spans of one ``trace_id``, linked into a causal tree."""

    def __init__(self, trace_id: str, spans: list[dict[str, Any]]) -> None:
        self.trace_id = trace_id
        self.spans = spans
        self._index = {(s.get("pid", 0), s.get("id")): s for s in spans}
        self._children: dict[tuple, list[dict]] = {}
        self.roots: list[dict[str, Any]] = []
        for span in spans:
            parent = span.get("parent")
            if parent is None:
                self.roots.append(span)
                continue
            key = (span.get("parent_pid", span.get("pid", 0)), parent)
            if key in self._index:
                self._children.setdefault(key, []).append(span)
            else:
                # The parent was traced by a process whose file was not
                # merged in (or tracing started mid-run): surface the
                # orphan as a root rather than dropping it.
                self.roots.append(span)

    @property
    def root(self) -> dict[str, Any] | None:
        """The tree's single root when it has exactly one."""
        return self.roots[0] if len(self.roots) == 1 else None

    @property
    def connected(self) -> bool:
        """Does every span hang off one root?"""
        return len(self.roots) == 1

    @property
    def duration_ns(self) -> int:
        root = self.root
        if root is not None:
            return root["dur_ns"]
        return max((s["dur_ns"] for s in self.spans), default=0)

    @property
    def name(self) -> str:
        root = self.root
        attrs = (root or {}).get("attrs", {})
        return str(attrs.get("txn", self.trace_id))

    def children_of(self, span: dict[str, Any]) -> list[dict[str, Any]]:
        """Direct children of *span*, in start order per process."""
        key = (span.get("pid", 0), span.get("id"))
        kids = self._children.get(key, [])
        return sorted(kids, key=lambda s: (s.get("pid", 0), s.get("start_ns", 0)))

    def stage_totals(self) -> dict[str, int]:
        """Summed per-stage nanoseconds over the tree's span attrs."""
        totals: dict[str, int] = {}
        for span in self.spans:
            for stage in STAGES:
                value = span.get("attrs", {}).get(f"{stage}_ns")
                if isinstance(value, (int, float)):
                    totals[stage] = totals.get(stage, 0) + int(value)
        return totals

    def render(self, *, max_spans: int = 40) -> list[str]:
        """Indented one-line-per-span rendering of the tree."""
        lines: list[str] = []

        def visit(span: dict[str, Any], depth: int) -> None:
            if len(lines) >= max_spans:
                return
            attrs = span.get("attrs", {})
            extras = " ".join(
                f"{key}={attrs[key]}"
                for key in ("entity", "site", "status", "result", "outcome")
                if key in attrs
            )
            lines.append(
                "  " * depth
                + f"{span['span']}  {span['dur_ns'] / 1e6:.3f} ms"
                + f"  [pid {span.get('pid', 0)}]"
                + (f"  {extras}" if extras else "")
            )
            for child in self.children_of(span):
                visit(child, depth + 1)

        for root in sorted(self.roots, key=lambda s: -s["dur_ns"]):
            visit(root, 0)
        if len(self.spans) > max_spans:
            lines.append(f"  ... {len(self.spans) - max_spans} more span(s)")
        return lines


def trace_trees(records: list[dict[str, Any]]) -> list[TraceTree]:
    """Group *records* by ``trace_id`` into :class:`TraceTree` objects,
    slowest first.  Spans without a ``trace_id`` (ordinary local spans)
    are left out."""
    grouped: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        trace_id = record.get("trace_id")
        if trace_id is not None:
            grouped.setdefault(trace_id, []).append(record)
    trees = [TraceTree(trace_id, spans) for trace_id, spans in grouped.items()]
    return sorted(trees, key=lambda tree: -tree.duration_ns)


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (``q`` in [0, 1]);
    delegates to the package-wide helper :func:`repro.stats.percentile`."""
    value = stats.percentile(ordered, q * 100.0)
    return 0.0 if value is None else value


def stage_rows(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Per-stage latency summary rows (count / p50 / p90 / p99 / max,
    nanoseconds) from the ``<stage>_ns`` attributes of merged trace
    records."""
    samples: dict[str, list[float]] = {stage: [] for stage in STAGES}
    for record in records:
        attrs = record.get("attrs", {})
        for stage in STAGES:
            value = attrs.get(f"{stage}_ns")
            if isinstance(value, (int, float)):
                samples[stage].append(float(value))
    rows = []
    for stage in STAGES:
        values = sorted(samples[stage])
        if not values:
            continue
        rows.append(
            {
                "stage": stage,
                "count": len(values),
                "p50_ns": _percentile(values, 0.50),
                "p90_ns": _percentile(values, 0.90),
                "p99_ns": _percentile(values, 0.99),
                "max_ns": values[-1],
            }
        )
    return rows
