"""Nested context-manager spans with monotonic timing and JSONL export.

The tracer is a process-global switch: :func:`start_tracing` opens a
JSONL file and every subsequent :func:`span` records one line per
finished span — name, start offset and duration in nanoseconds
(``time.perf_counter_ns``), parent span id, the worker pid, and any
attributes the instrumented code attached.  While tracing is *off*,
:func:`span` returns one shared :data:`NULL_SPAN` singleton whose
``__enter__``/``__exit__`` do nothing, so the instrumented hot paths
cost a dict lookup and a falsy branch and allocate **nothing**.

Idiom (attribute work guarded so the disabled path stays free)::

    with span("safety.decide") as sp:
        verdict = ...
        if sp:
            sp.set(method=verdict.method, safe=verdict.safe)

A span that exits through an exception is still recorded, with
``error=True`` and the exception type attached (and the exception is
never swallowed).

Process-pool workers cannot share the parent's file handle, so each
worker traces into ``<path>.w<pid>`` (:func:`worker_trace_path`, set up
by :func:`worker_init` from a pool initializer) and the parent merges
the per-worker files back into the main file with
:func:`absorb_worker_traces` when the pool is closed.  Records carry
their ``pid`` so parent ids never collide across processes.

Concurrent asyncio tasks cannot use the implicit span *stack* — a span
held open across an ``await`` would adopt children from whichever task
ran in between.  :func:`detached_span` builds a span with an
**explicit** parent instead (a local :class:`Span` or a remote
``(pid, span_id)`` pair) that never touches the stack, plus an
optional ``trace_id`` that groups every span of one distributed
transaction across processes.  :mod:`repro.obs.distributed` layers the
wire propagation and merge model on top.
"""

from __future__ import annotations

import glob
import json
import os
import time
from typing import Any


class NullSpan:
    """The no-op span returned while tracing is disabled.

    Falsy, so instrumentation can guard attribute computation with
    ``if sp:`` and pay nothing on the disabled path.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def set(self, **attrs: Any) -> "NullSpan":
        """Ignore *attrs* (the tracer is off)."""
        return self


NULL_SPAN = NullSpan()


class Span:
    """One live span: a named, timed, attributed region of execution."""

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "parent_pid",
        "trace_id",
        "start_ns",
        "attrs",
        "_detached",
    )

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = 0
        self.parent_id: int | None = None
        #: Set when the parent span lives in another process.
        self.parent_pid: int | None = None
        #: Distributed-trace grouping key (:mod:`repro.obs.distributed`).
        self.trace_id: str | None = None
        self.start_ns = 0
        self.attrs: dict[str, Any] = {}
        self._detached = False

    def __bool__(self) -> bool:
        return True

    def set(self, **attrs: Any) -> "Span":
        """Attach *attrs* to the span record (last write per key wins)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        if not self._detached:
            stack = tracer._stack
            self.parent_id = stack[-1].span_id if stack else None
            stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        if exc_type is not None:
            self.attrs["error"] = True
            self.attrs["error_type"] = exc_type.__name__
        tracer = self.tracer
        if not self._detached:
            if tracer._stack and tracer._stack[-1] is self:
                tracer._stack.pop()
            else:  # mis-nested exit; drop up to and including this span
                while tracer._stack:
                    if tracer._stack.pop() is self:
                        break
        tracer._write(self, end_ns)
        return False


class Tracer:
    """Owns the output file, the span stack and the id counter."""

    def __init__(self, path: str) -> None:
        self.path = path
        # Line buffered so a fork never duplicates half-written records
        # out of the parent's buffer into a worker's file.
        self._file = open(path, "w", encoding="utf-8", buffering=1)
        self._origin_ns = time.perf_counter_ns()
        self._next_id = 1
        self._stack: list[Span] = []
        self._pid = os.getpid()

    def span(self, name: str) -> Span:
        return Span(self, name)

    def _write(self, span: Span, end_ns: int) -> None:
        record: dict[str, Any] = {
            "span": span.name,
            "id": span.span_id,
            "pid": self._pid,
            "start_ns": span.start_ns - self._origin_ns,
            "dur_ns": end_ns - span.start_ns,
        }
        if span.parent_id is not None:
            record["parent"] = span.parent_id
            if span.parent_pid is not None and span.parent_pid != self._pid:
                record["parent_pid"] = span.parent_pid
        if span.trace_id is not None:
            record["trace_id"] = span.trace_id
        if span.attrs:
            record["attrs"] = _jsonable(span.attrs)
        self._file.write(json.dumps(record) + "\n")

    def absorb(self, path: str) -> int:
        """Append the records of another trace file (a worker's) into
        this tracer's file; returns the number of lines absorbed."""
        absorbed = 0
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    self._file.write(line + "\n")
                    absorbed += 1
        return absorbed

    def close(self) -> None:
        self._file.close()


def _jsonable(attrs: dict[str, Any]) -> dict[str, Any]:
    """Attributes coerced to JSON-safe scalars (repr fallback)."""
    safe: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        elif isinstance(value, (list, tuple)):
            safe[key] = [
                item
                if isinstance(item, (str, int, float, bool)) or item is None
                else repr(item)
                for item in value
            ]
        else:
            safe[key] = repr(value)
    return safe


# ----------------------------------------------------------------------
# The process-global switch
# ----------------------------------------------------------------------

_tracer: Tracer | None = None


def start_tracing(path: str) -> Tracer:
    """Begin tracing into the JSONL file *path* (replaces any active
    tracer; the previous one is flushed and closed)."""
    global _tracer
    if _tracer is not None:
        _tracer.close()
    _tracer = Tracer(path)
    return _tracer


def stop_tracing() -> str | None:
    """Flush and close the active tracer; returns its path (or ``None``
    when tracing was already off)."""
    global _tracer
    if _tracer is None:
        return None
    path = _tracer.path
    _tracer.close()
    _tracer = None
    return path


def tracing_enabled() -> bool:
    """Is a tracer active in this process?"""
    return _tracer is not None


def trace_path() -> str | None:
    """The active tracer's output path, or ``None``."""
    return _tracer.path if _tracer is not None else None


def span(name: str):
    """A context-manager span named *name* — :data:`NULL_SPAN` (shared,
    allocation-free) while tracing is off."""
    tracer = _tracer
    if tracer is None:
        return NULL_SPAN
    return Span(tracer, name)


def current_span():
    """The innermost open span, for attaching attributes from helper
    code (e.g. SCC counts); :data:`NULL_SPAN` when tracing is off or no
    span is open."""
    tracer = _tracer
    if tracer is None or not tracer._stack:
        return NULL_SPAN
    return tracer._stack[-1]


def detached_span(
    name: str,
    *,
    trace_id: str | None = None,
    parent: "Span | tuple[int, int] | None" = None,
):
    """A span with an **explicit** parent that never touches the
    tracer's span stack — the form concurrent asyncio tasks must use,
    since a stack-based span held open across an ``await`` would adopt
    children from unrelated tasks.

    *parent* is a local :class:`Span` (the child inherits its
    ``trace_id`` unless one is given) or a remote ``(pid, span_id)``
    pair from another process' trace context.  Returns
    :data:`NULL_SPAN` while tracing is off.
    """
    tracer = _tracer
    if tracer is None:
        return NULL_SPAN
    span = Span(tracer, name)
    span._detached = True
    span.trace_id = trace_id
    if isinstance(parent, Span):
        span.parent_id = parent.span_id
        if trace_id is None:
            span.trace_id = parent.trace_id
    elif parent is not None:
        pid, span_id = parent
        span.parent_id = span_id
        span.parent_pid = pid
    return span


def tracer_pid() -> int:
    """The pid the active tracer stamps into records (this process);
    0 when tracing is off."""
    return _tracer._pid if _tracer is not None else 0


# ----------------------------------------------------------------------
# Process-pool boundary
# ----------------------------------------------------------------------


def worker_trace_path(base: str, pid: int) -> str:
    """Per-worker trace file for the parent trace *base*."""
    return f"{base}.w{pid}"


def worker_init(base: str) -> None:
    """Pool-worker initializer: trace into this worker's own file.

    Runs in the child after fork; the inherited parent tracer (if any)
    is *abandoned*, not closed — closing would flush the parent's
    buffered bytes into the child's copy of the file.
    """
    global _tracer
    _tracer = None
    start_tracing(worker_trace_path(base, os.getpid()))


def absorb_worker_traces(base: str | None = None) -> int:
    """Merge every ``<base>.w*`` worker file into the active tracer and
    delete the worker files; returns the number of records absorbed.
    No-op (returns 0) when tracing is off."""
    tracer = _tracer
    if tracer is None:
        return 0
    if base is None:
        base = tracer.path
    absorbed = 0
    for worker_file in sorted(glob.glob(f"{glob.escape(base)}.w*")):
        absorbed += tracer.absorb(worker_file)
        os.remove(worker_file)
    return absorbed
