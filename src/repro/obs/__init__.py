"""Observability: spans, metrics and event timelines for the stack.

Three complementary instruments, all stdlib-only and all near-free when
switched off:

* :mod:`~repro.obs.trace` — nested context-manager spans with
  monotonic timing and a JSONL exporter; the safety deciders, the
  graph algorithms and the admission service annotate their phases so
  ``repro ... --trace FILE`` shows where a decision's time went (and
  ``repro trace-report FILE`` aggregates it into a top-spans table);
* :mod:`~repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms with Prometheus-text and JSON dumps
  (``--metrics``, and the ``METRICS`` command of ``repro serve``);
* :mod:`~repro.obs.events` — an append-only, logically timestamped
  event log the simulator fills with lock grants/blocks/releases, step
  executions and deadlock detections, so a non-serializable run can be
  replayed as a readable timeline.

:mod:`~repro.obs.distributed` carries all three across process
boundaries for the cluster runtime: trace contexts ride inside
protocol messages, transports stamp frames for the per-stage
wire-latency histograms, and a collector merges per-process trace
files into one causal tree per transaction.

:mod:`~repro.obs.log` funnels the CLI's human-readable output through
one verbosity-aware helper (with a JSON-lines formatter option), and
:mod:`~repro.obs.report` turns exported traces into summaries.

:mod:`~repro.obs.insight` is the always-on tier: a bounded
flight-recorder ring dumped as a post-mortem bundle when a run ends
badly, the ``status``/``inspect`` introspection plane with global
wait-for stitching, and per-entity contention analytics.
"""

from .distributed import (
    LATENCY_BUCKETS,
    STAGES,
    TraceTree,
    WIRE,
    WireObserver,
    merge_traces,
    new_trace_id,
    remote_span,
    stage_rows,
    trace_trees,
)
from .events import EventLog, SimEvent
from .insight import (
    ClusterStatus,
    ContentionTally,
    FlightRecorder,
    contention_from_records,
    deadlock_cycles,
    dump_postmortem,
    load_postmortem,
    probe_site,
    probe_sites,
    render_contention,
    render_postmortem,
    wait_for_graph,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from .report import (
    aggregate,
    load_trace,
    render_distributed,
    render_table,
    summarize,
    summarize_files,
)
from .trace import (
    NULL_SPAN,
    NullSpan,
    Span,
    Tracer,
    absorb_worker_traces,
    current_span,
    detached_span,
    span,
    start_tracing,
    stop_tracing,
    trace_path,
    tracer_pid,
    tracing_enabled,
)

__all__ = [
    "ClusterStatus",
    "ContentionTally",
    "Counter",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "REGISTRY",
    "STAGES",
    "SimEvent",
    "Span",
    "TraceTree",
    "Tracer",
    "WIRE",
    "WireObserver",
    "absorb_worker_traces",
    "aggregate",
    "contention_from_records",
    "current_span",
    "deadlock_cycles",
    "detached_span",
    "dump_postmortem",
    "get_registry",
    "load_postmortem",
    "load_trace",
    "merge_traces",
    "new_trace_id",
    "probe_site",
    "probe_sites",
    "remote_span",
    "render_contention",
    "render_distributed",
    "render_postmortem",
    "render_table",
    "span",
    "wait_for_graph",
    "stage_rows",
    "start_tracing",
    "stop_tracing",
    "summarize",
    "summarize_files",
    "trace_path",
    "trace_trees",
    "tracer_pid",
    "tracing_enabled",
]
