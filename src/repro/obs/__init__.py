"""Observability: spans, metrics and event timelines for the stack.

Three complementary instruments, all stdlib-only and all near-free when
switched off:

* :mod:`~repro.obs.trace` — nested context-manager spans with
  monotonic timing and a JSONL exporter; the safety deciders, the
  graph algorithms and the admission service annotate their phases so
  ``repro ... --trace FILE`` shows where a decision's time went (and
  ``repro trace-report FILE`` aggregates it into a top-spans table);
* :mod:`~repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms with Prometheus-text and JSON dumps
  (``--metrics``, and the ``METRICS`` command of ``repro serve``);
* :mod:`~repro.obs.events` — an append-only, logically timestamped
  event log the simulator fills with lock grants/blocks/releases, step
  executions and deadlock detections, so a non-serializable run can be
  replayed as a readable timeline.

:mod:`~repro.obs.log` funnels the CLI's human-readable output through
one verbosity-aware helper (with a JSON-lines formatter option), and
:mod:`~repro.obs.report` turns exported traces into summaries.
"""

from .events import EventLog, SimEvent
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from .report import aggregate, load_trace, render_table, summarize
from .trace import (
    NULL_SPAN,
    NullSpan,
    Span,
    Tracer,
    absorb_worker_traces,
    current_span,
    span,
    start_tracing,
    stop_tracing,
    trace_path,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "REGISTRY",
    "SimEvent",
    "Span",
    "Tracer",
    "absorb_worker_traces",
    "aggregate",
    "current_span",
    "get_registry",
    "load_trace",
    "render_table",
    "span",
    "start_tracing",
    "stop_tracing",
    "summarize",
    "trace_path",
    "tracing_enabled",
]
