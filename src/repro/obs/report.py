"""Aggregate a JSONL trace into a top-spans table.

``repro trace-report FILE [FILE ...]`` funnels here: every record
written by :mod:`repro.obs.trace` is grouped by span name and
summarized as call count, **total** time (sum of span durations) and
**self** time (total minus the time spent in child spans — the number
that actually ranks where a run went).  Parent/child links are
resolved per ``pid``, so a trace merged from process-pool workers
aggregates correctly.

When the records carry distributed-trace fields
(:mod:`repro.obs.distributed` — a ``trace_id`` per transaction and
cross-process parent links), :func:`summarize_files` appends the
distributed section: the slowest transactions rendered as causal span
trees, a per-stage wire-latency percentile table, and
election/failover annotations from ``replica.*`` spans.
"""

from __future__ import annotations

import json
from typing import Any, Callable


def load_trace(
    path: str,
    *,
    strict: bool = True,
    on_skip: Callable[[str, int, str], None] | None = None,
) -> list[dict[str, Any]]:
    """Parse a JSONL trace file into its records.

    With ``strict=True`` (the default) bad lines raise ``ValueError``.
    With ``strict=False`` a malformed line — a crash-killed producer
    leaves a truncated final line, and post-mortem bundles must stay
    readable anyway — is skipped, invoking *on_skip(path, number,
    reason)* so callers can count a warning instead of dying.
    """
    records = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{number}: not a JSON trace record: {exc}"
                    ) from exc
                if on_skip is not None:
                    on_skip(path, number, f"not a JSON trace record: {exc}")
                continue
            if (
                not isinstance(record, dict)
                or "span" not in record
                or "dur_ns" not in record
            ):
                if strict:
                    raise ValueError(
                        f"{path}:{number}: record lacks span/dur_ns fields"
                    )
                if on_skip is not None:
                    on_skip(path, number, "record lacks span/dur_ns fields")
                continue
            records.append(record)
    return records


def aggregate(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Per-span-name rows: calls, total/self/max nanoseconds, errors.

    Self time of a span is its duration minus the summed durations of
    its *direct* children (resolved within the same pid).
    """
    child_ns: dict[tuple[int, int], int] = {}
    for record in records:
        parent = record.get("parent")
        if parent is not None:
            key = (record.get("pid", 0), parent)
            child_ns[key] = child_ns.get(key, 0) + record["dur_ns"]

    rows: dict[str, dict[str, Any]] = {}
    for record in records:
        name = record["span"]
        row = rows.get(name)
        if row is None:
            row = rows[name] = {
                "span": name,
                "calls": 0,
                "total_ns": 0,
                "self_ns": 0,
                "max_ns": 0,
                "errors": 0,
            }
        duration = record["dur_ns"]
        own = duration - child_ns.get(
            (record.get("pid", 0), record.get("id", -1)), 0
        )
        row["calls"] += 1
        row["total_ns"] += duration
        row["self_ns"] += max(0, own)
        row["max_ns"] = max(row["max_ns"], duration)
        if record.get("attrs", {}).get("error"):
            row["errors"] += 1
    return sorted(rows.values(), key=lambda row: -row["self_ns"])


def _ms(nanoseconds: int) -> str:
    return f"{nanoseconds / 1e6:.3f}"


def render_table(
    rows: list[dict[str, Any]], *, limit: int | None = None
) -> str:
    """Fixed-width rendering of :func:`aggregate` rows."""
    shown = rows[:limit] if limit is not None else rows
    headers = ("span", "calls", "total ms", "self ms", "max ms", "errors")
    cells = [
        (
            row["span"],
            str(row["calls"]),
            _ms(row["total_ns"]),
            _ms(row["self_ns"]),
            _ms(row["max_ns"]),
            str(row["errors"]),
        )
        for row in shown
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(row: tuple[str, ...]) -> str:
        first = row[0].ljust(widths[0])
        rest = "  ".join(
            cell.rjust(width) for cell, width in zip(row[1:], widths[1:])
        )
        return f"{first}  {rest}".rstrip()

    lines = [fmt(headers)]
    lines.extend(fmt(row) for row in cells)
    if limit is not None and len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more span name(s)")
    return "\n".join(lines)


def summarize(path: str, *, limit: int | None = None) -> str:
    """Load, aggregate and render *path* in one call."""
    return summarize_files([path], limit=limit)


def render_distributed(
    records: list[dict[str, Any]], *, trees: int = 3
) -> str | None:
    """The distributed-trace section for merged *records*: slowest
    transaction trees, the per-stage latency percentile table, and
    election annotations.  ``None`` when no record carries a
    ``trace_id`` (a purely local trace)."""
    from . import distributed

    forest = distributed.trace_trees(records)
    if not forest:
        return None
    lines = [
        f"distributed traces: {len(forest)} transaction(s), "
        f"{sum(len(tree.spans) for tree in forest)} spans, "
        f"{sum(1 for tree in forest if tree.connected)} fully connected"
    ]
    for tree in forest[:trees]:
        lines.append("")
        lines.append(
            f"-- {tree.name}  ({tree.trace_id}, "
            f"{tree.duration_ns / 1e6:.3f} ms"
            + ("" if tree.connected else ", DISCONNECTED")
            + ") --"
        )
        lines.extend(tree.render())
    if len(forest) > trees:
        lines.append(f"... {len(forest) - trees} more transaction(s)")

    stage_rows = distributed.stage_rows(records)
    if stage_rows:
        lines.append("")
        lines.append("per-stage latency (from span attributes):")
        headers = ("stage", "count", "p50 ms", "p90 ms", "p99 ms", "max ms")
        table = [
            (
                row["stage"],
                str(row["count"]),
                _ms(row["p50_ns"]),
                _ms(row["p90_ns"]),
                _ms(row["p99_ns"]),
                _ms(row["max_ns"]),
            )
            for row in stage_rows
        ]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in table))
            for i in range(len(headers))
        ]
        lines.append(
            "  "
            + "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
        )
        for row in table:
            lines.append(
                "  "
                + row[0].ljust(widths[0])
                + "  "
                + "  ".join(
                    cell.rjust(w) for cell, w in zip(row[1:], widths[1:])
                )
            )

    annotations = [
        record
        for record in records
        if record["span"] in ("replica.campaign", "replica.elect")
    ]
    if annotations:
        lines.append("")
        lines.append("elections and failovers:")
        for record in annotations:
            attrs = record.get("attrs", {})
            detail = " ".join(
                f"{key}={attrs[key]}"
                for key in ("address", "epoch", "won", "clock")
                if key in attrs
            )
            lines.append(
                f"  {record['span']}  {record['dur_ns'] / 1e6:.3f} ms"
                + (f"  {detail}" if detail else "")
            )
    return "\n".join(lines)


def summarize_files(
    paths: list[str], *, limit: int | None = None, trees: int = 3
) -> str:
    """Merge one trace file per process, aggregate, and render — with
    the distributed section appended when the trace carries
    cross-process records."""
    records: list[dict[str, Any]] = []
    skipped: list[str] = []
    for path in paths:
        records.extend(
            load_trace(
                path,
                strict=False,
                on_skip=lambda p, n, why: skipped.append(f"{p}:{n}: {why}"),
            )
        )
    if skipped and not records:
        # Damaged lines inside a real trace are survivable; a file (or
        # set) with *nothing but* damage is not a trace at all.
        raise ValueError(skipped[0])
    rows = aggregate(records)
    shown = paths[0] if len(paths) == 1 else f"{len(paths)} files"
    header = (
        f"trace {shown}: {len(records)} spans, "
        f"{len(rows)} distinct names, "
        f"{len({record.get('pid', 0) for record in records})} process(es)"
    )
    if skipped:
        header += (
            f"\nwarning: skipped {len(skipped)} malformed line(s): "
            + "; ".join(skipped[:3])
            + (" ..." if len(skipped) > 3 else "")
        )
    output = header + "\n\n" + render_table(rows, limit=limit)
    section = render_distributed(records, trees=trees)
    if section is not None:
        output += "\n\n" + section
    return output
