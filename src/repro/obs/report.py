"""Aggregate a JSONL trace into a top-spans table.

``repro trace-report FILE`` funnels here: every record written by
:mod:`repro.obs.trace` is grouped by span name and summarized as call
count, **total** time (sum of span durations) and **self** time (total
minus the time spent in child spans — the number that actually ranks
where a run went).  Parent/child links are resolved per ``pid``, so a
trace merged from process-pool workers aggregates correctly.
"""

from __future__ import annotations

import json
from typing import Any


def load_trace(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL trace file into its records (bad lines raise)."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{number}: not a JSON trace record: {exc}"
                ) from exc
            if "span" not in record or "dur_ns" not in record:
                raise ValueError(
                    f"{path}:{number}: record lacks span/dur_ns fields"
                )
            records.append(record)
    return records


def aggregate(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Per-span-name rows: calls, total/self/max nanoseconds, errors.

    Self time of a span is its duration minus the summed durations of
    its *direct* children (resolved within the same pid).
    """
    child_ns: dict[tuple[int, int], int] = {}
    for record in records:
        parent = record.get("parent")
        if parent is not None:
            key = (record.get("pid", 0), parent)
            child_ns[key] = child_ns.get(key, 0) + record["dur_ns"]

    rows: dict[str, dict[str, Any]] = {}
    for record in records:
        name = record["span"]
        row = rows.get(name)
        if row is None:
            row = rows[name] = {
                "span": name,
                "calls": 0,
                "total_ns": 0,
                "self_ns": 0,
                "max_ns": 0,
                "errors": 0,
            }
        duration = record["dur_ns"]
        own = duration - child_ns.get(
            (record.get("pid", 0), record.get("id", -1)), 0
        )
        row["calls"] += 1
        row["total_ns"] += duration
        row["self_ns"] += max(0, own)
        row["max_ns"] = max(row["max_ns"], duration)
        if record.get("attrs", {}).get("error"):
            row["errors"] += 1
    return sorted(rows.values(), key=lambda row: -row["self_ns"])


def _ms(nanoseconds: int) -> str:
    return f"{nanoseconds / 1e6:.3f}"


def render_table(
    rows: list[dict[str, Any]], *, limit: int | None = None
) -> str:
    """Fixed-width rendering of :func:`aggregate` rows."""
    shown = rows[:limit] if limit is not None else rows
    headers = ("span", "calls", "total ms", "self ms", "max ms", "errors")
    cells = [
        (
            row["span"],
            str(row["calls"]),
            _ms(row["total_ns"]),
            _ms(row["self_ns"]),
            _ms(row["max_ns"]),
            str(row["errors"]),
        )
        for row in shown
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(row: tuple[str, ...]) -> str:
        first = row[0].ljust(widths[0])
        rest = "  ".join(
            cell.rjust(width) for cell, width in zip(row[1:], widths[1:])
        )
        return f"{first}  {rest}".rstrip()

    lines = [fmt(headers)]
    lines.extend(fmt(row) for row in cells)
    if limit is not None and len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more span name(s)")
    return "\n".join(lines)


def summarize(path: str, *, limit: int | None = None) -> str:
    """Load, aggregate and render *path* in one call."""
    records = load_trace(path)
    rows = aggregate(records)
    header = (
        f"trace {path}: {len(records)} spans, "
        f"{len(rows)} distinct names, "
        f"{len({record.get('pid', 0) for record in records})} process(es)"
    )
    return header + "\n\n" + render_table(rows, limit=limit)
