"""A process-wide registry of counters, gauges and histograms.

Instrumented code resolves a metric by name at use time (a dict lookup;
creation is lazy, so :meth:`MetricsRegistry.reset` in tests never
orphans a cached object) and mutates it with plain attribute
arithmetic — no locks.  The registry renders two ways:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` headers, one sample per
  line, ``{label="value"}`` selectors, ``_bucket``/``_sum``/``_count``
  series for histograms);
* :meth:`MetricsRegistry.to_dict` — a JSON-friendly nested dict (used
  by ``repro vet --json`` and the benchmark snapshot rows).

:data:`REGISTRY` is the default process-wide instance; everything in
:mod:`repro` records into it so one ``--metrics`` dump shows the whole
stack.  Tests reset it per-case with :meth:`MetricsRegistry.reset`.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Iterable

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Seconds-scale latency buckets: 10us .. 10s.
DEFAULT_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
)


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _selector(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{key}="{_escape(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Metric:
    """Common behaviour: name/help validation and labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._children: dict[tuple[tuple[str, str], ...], _Metric] = {}
        self._labels: tuple[tuple[str, str], ...] = ()

    def labels(self, **labels: str):
        """The child of this metric carrying *labels* (created on first
        use); children share the parent's exposition block."""
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = self._children.get(key)
        if child is None:
            child = type(self)(self.name, self.help)
            child._labels = key
            self._children[key] = child
        return child

    def _series(self) -> Iterable["_Metric"]:
        if not self._children:
            yield self
        else:
            for key in sorted(self._children):
                yield self._children[key]

    def expose(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for series in self._series():
            lines.extend(series._sample_lines())
        return lines

    def _sample_lines(self) -> list[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _value_dict(self) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"type": self.kind}
        if not self._children:
            payload["value"] = self._value_dict()
        else:
            payload["series"] = {
                _selector(key) or "{}": child._value_dict()
                for key, child in sorted(self._children.items())
            }
        return payload


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def _sample_lines(self) -> list[str]:
        return [
            f"{self.name}{_selector(self._labels)} "
            f"{_format_value(self.value)}"
        ]

    def _value_dict(self) -> Any:
        return self.value


class Gauge(_Metric):
    """A value that goes up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Add *amount* to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract *amount* from the gauge."""
        self.value -= amount

    def _sample_lines(self) -> list[str]:
        return [
            f"{self.name}{_selector(self._labels)} "
            f"{_format_value(self.value)}"
        ]

    def _value_dict(self) -> Any:
        return self.value


class Histogram(_Metric):
    """Cumulative-bucket histogram of observations (Prometheus style)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def labels(self, **labels: str):
        child = super().labels(**labels)
        child.buckets = self.buckets
        child.counts = getattr(
            child, "counts", [0] * len(self.buckets)
        )
        if len(child.counts) != len(self.buckets):
            child.counts = [0] * len(self.buckets)
        return child

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        index = bisect_left(self.buckets, value)
        if index < len(self.counts):
            self.counts[index] += 1

    def _sample_lines(self) -> list[str]:
        lines = []
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            le = 'le="%g"' % bound
            lines.append(
                f"{self.name}_bucket"
                f"{_selector(self._labels, le)} {cumulative}"
            )
        inf = 'le="+Inf"'
        lines.append(
            f"{self.name}_bucket"
            f"{_selector(self._labels, inf)} {self.count}"
        )
        lines.append(
            f"{self.name}_sum{_selector(self._labels)} "
            f"{_format_value(round(self.sum, 9))}"
        )
        lines.append(
            f"{self.name}_count{_selector(self._labels)} {self.count}"
        )
        return lines

    def _value_dict(self) -> Any:
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "buckets": {
                f"{bound:g}": count
                for bound, count in zip(self.buckets, self.counts)
            },
        }


class MetricsRegistry:
    """Named metrics, created lazily and rendered together."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter *name*."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge *name*."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram *name*."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        """The metric called *name*, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def to_prometheus(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict[str, Any]:
        """The whole registry as a JSON-friendly dict."""
        return {
            name: metric.to_dict()
            for name, metric in sorted(self._metrics.items())
        }

    def reset(self, prefix: str | None = None) -> None:
        """Forget every metric, or — with *prefix* — only the metrics
        whose name starts with it (``reset(prefix="repro_cluster_")``
        is how :func:`repro.cluster.runtime.run_cluster` keeps
        back-to-back runs in one process from accumulating each
        other's counters).  Instrumented code re-resolves its metrics
        by name at use time, so nothing keeps mutating an orphaned
        object."""
        if prefix is None:
            self._metrics.clear()
            return
        for name in [n for n in self._metrics if n.startswith(prefix)]:
            del self._metrics[name]


REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The default process-wide registry."""
    return REGISTRY
