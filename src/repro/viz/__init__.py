"""Terminal and DOT renderings of the paper's figures."""

from .ascii_plane import render_plane
from .dot import digraph_to_dot, transaction_to_dot

__all__ = ["digraph_to_dot", "render_plane", "transaction_to_dot"]
