"""DOT (Graphviz) export for the package's graphs.

Everything the paper draws — transaction dags (Figs. 1, 3, 5, 9),
``D(T1, T2)`` with its dominators (Figs. 3e, 8), the interaction graph
``G`` and the ``B_c`` graphs of §6 — can be emitted as ``.dot`` text for
offline rendering.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core.transaction import Transaction
from ..graphs import DiGraph, transitive_reduction


def _quote(name: object) -> str:
    return '"' + str(name).replace('"', r"\"") + '"'


def digraph_to_dot(
    graph: DiGraph,
    *,
    name: str = "D",
    highlight: Iterable | None = None,
) -> str:
    """Render any :class:`DiGraph`; *highlight* nodes are filled (used
    for dominators, Fig. 8-style)."""
    marked = set(highlight or ())
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for node in graph.nodes():
        attributes = ' [style=filled, fillcolor=lightgray]' if node in marked else ""
        lines.append(f"  {_quote(node)}{attributes};")
    for tail, head in graph.arcs():
        lines.append(f"  {_quote(tail)} -> {_quote(head)};")
    lines.append("}")
    return "\n".join(lines)


def transaction_to_dot(transaction: Transaction) -> str:
    """Render a transaction's Hasse diagram with one cluster per site —
    the layout of the paper's transaction figures."""
    cover = transitive_reduction(transaction.poset().graph())
    lines = [f"digraph {_quote(transaction.name)} {{", "  rankdir=TB;"]
    for site in sorted(transaction.sites_used()):
        lines.append(f"  subgraph cluster_site{site} {{")
        lines.append(f'    label="site {site}";')
        for step in transaction.steps_at_site(site):
            lines.append(f"    {_quote(step)};")
        lines.append("  }")
    for tail, head in cover.arcs():
        lines.append(f"  {_quote(tail)} -> {_quote(head)};")
    lines.append("}")
    return "\n".join(lines)
