"""ASCII rendering of the coordinated plane (Fig. 2).

Draws the geometric picture of a pair of total orders: forbidden
rectangles as ``#`` blocks, an optional schedule curve as ``*``, axis
labels as the step names — a terminal rendition of the paper's Fig. 2.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.geometry import GeometricPicture


def render_plane(
    picture: GeometricPicture,
    curve: Sequence[tuple[int, int]] | None = None,
) -> str:
    """Render the plane; rows are t2 positions (top = end of t2)."""
    width, height = picture.m1 + 1, picture.m2 + 1
    grid = [[" " for _ in range(width)] for _ in range(height)]
    for rect in picture.rectangles.values():
        for i in range(rect.x_lo, rect.x_hi + 1):
            for j in range(rect.y_lo, rect.y_hi + 1):
                if 0 <= i < width and 0 <= j < height:
                    grid[j][i] = "#"
    if curve is not None:
        for i, j in curve:
            if 0 <= i < width and 0 <= j < height:
                grid[j][i] = "*"
    lines: list[str] = []
    top_label = "t2 ^"
    lines.append(top_label)
    for j in range(height - 1, -1, -1):
        t2_step = str(picture.t2[j - 1]) if 1 <= j <= picture.m2 else ""
        row = "".join(grid[j][i].ljust(4) for i in range(width))
        lines.append(f"{t2_step:>6} |{row}")
    axis = "       +" + "-" * (4 * width)
    lines.append(axis + "> t1")
    labels = "        " + "".join(
        str(step).ljust(4) for step in [""] + list(picture.t1)
    )
    lines.append(labels)
    legend = ["  # forbidden rectangle"]
    if curve is not None:
        legend.append("  * schedule curve")
    for entity, rect in picture.rectangles.items():
        legend.append(
            f"  {entity}: cols {rect.x_lo}..{rect.x_hi}, "
            f"rows {rect.y_lo}..{rect.y_hi}"
        )
    lines.extend(legend)
    return "\n".join(lines)
