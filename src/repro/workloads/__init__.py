"""Workload generators: random transactions/systems/formulas and the
programmatic reconstructions of the paper's figures."""

from .paper_examples import (
    figure_1,
    figure_2_total_orders,
    figure_3,
    figure_3_extension_pairs,
    figure_5,
    figure_8_formula,
)
from .random_cnf import random_restricted_cnf
from .random_transactions import (
    random_database,
    random_pair_system,
    random_system,
    random_total_order_pair,
    random_transaction,
)
from .traffic import (
    POLICIES,
    VET_CYCLE_LIMIT,
    ArrivalModel,
    KeyModel,
    LatencyModel,
    MixModel,
    TrafficSpec,
    TrafficWorkload,
    generate_workload,
    zipf_weights,
)

__all__ = [
    "POLICIES",
    "VET_CYCLE_LIMIT",
    "ArrivalModel",
    "KeyModel",
    "LatencyModel",
    "MixModel",
    "TrafficSpec",
    "TrafficWorkload",
    "figure_1",
    "figure_2_total_orders",
    "figure_3",
    "figure_3_extension_pairs",
    "figure_5",
    "figure_8_formula",
    "generate_workload",
    "random_database",
    "random_pair_system",
    "random_restricted_cnf",
    "random_system",
    "random_total_order_pair",
    "random_transaction",
    "zipf_weights",
]
