"""Seeded traffic models for the cluster runtime.

The repo's earlier benchmarks replay *uniform synthetic rounds*: every
transaction clone touches the same entities with the same shape, and a
fixed pool of coordinators drives them closed-loop.  Production traffic
is none of those things.  This module is the missing layer: a
:class:`TrafficSpec` describes a workload the way a load generator
would —

* **key popularity** — uniform, or Zipfian hot-key skew (a few entities
  take most of the locks; the classic contention regime);
* **transaction mix** — short transactions with a configurable fraction
  of long-lived ones touching more entities (long lock-hold windows);
* **arrival process** — *closed-loop* (a fixed pool of concurrent
  clients, the classical benchmark shape) or *open-loop* Poisson
  arrivals at a target offered load, which keeps submitting work even
  when the cluster falls behind (sustained overload);
* **multi-region latency** — sites mapped to named regions with a
  per-region-pair delay matrix, injected into the cluster transport
  (:class:`repro.cluster.transport.LatencyMatrix`).

:func:`generate_workload` turns a spec into a concrete
:class:`TrafficWorkload` — a §2-valid :class:`~repro.core.schedule.
TransactionSystem` of distinct instances plus an arrival schedule —
under one of three locking **policies** (:data:`POLICIES`):

* ``"2pl"`` — two-phase transactions (all locks precede all unlocks);
  §6's always-safe family;
* ``"tree"`` — crab-walk tree-protocol transactions over a heap-shaped
  entity hierarchy (hottest key at the root); the safe non-two-phase
  family;
* ``"vetted-optimal"`` — early-unlock interleaved transactions filtered
  through an admission registry at generation time: candidates are
  drawn without any two-phase or tree discipline and kept only when
  Proposition-2 vetting certifies them safe against the already-kept
  set.  Nothing guarantees safety *by shape* — the certificate is the
  vetting itself, which is the gateway's whole premise.

Everything is a pure function of ``(spec, policy, seed)``: the same
triple reproduces the same transaction system and the same arrival
schedule, byte for byte — the arena's determinism fingerprints depend
on it.  Specs round-trip through JSON (:meth:`TrafficSpec.load` /
:meth:`TrafficSpec.to_dict`) with FaultPlan-style load-time validation:
unknown keys and malformed values raise
:class:`~repro.errors.TrafficSpecError`.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass, field

from ..core.schedule import TransactionSystem
from ..core.transaction import Transaction, TransactionBuilder
from ..errors import TrafficSpecError
from .random_transactions import random_database, random_transaction

#: Locking policies the generator can impose on a workload.
POLICIES = ("2pl", "tree", "vetted-optimal")

#: Per-admission cycle-vetting budget for ``vetted-optimal`` generation
#: (and the arena's per-cell gateway, which must agree with it so a
#: workload admitted at generation time re-admits inside its cell).
#: Zipfian traffic can make the interaction graph dense, and simple-
#: cycle enumeration is factorial in the dense component; exhausting
#: the budget counts as a rejection, never as an unsound admit.
VET_CYCLE_LIMIT = 2000

#: Candidate draws allowed per kept ``vetted-optimal`` transaction
#: before the generator settles for a smaller system.
_VET_ATTEMPT_FACTOR = 20

#: Key-popularity distributions.
KEY_DISTRIBUTIONS = ("uniform", "zipfian")

#: Arrival processes.
ARRIVAL_PROCESSES = ("closed", "open")


def _require_keys(payload: dict, known: set[str], where: str) -> None:
    if not isinstance(payload, dict):
        raise TrafficSpecError(
            f"{where} must be a JSON object, not {type(payload).__name__}"
        )
    unknown = set(payload) - known
    if unknown:
        raise TrafficSpecError(
            f"unknown {where} keys {sorted(unknown)} (known: {sorted(known)})"
        )


def zipf_weights(count: int, skew: float) -> list[float]:
    """Normalized Zipf(s) popularity weights for *count* keys, hottest
    first: ``w_i ∝ 1 / (i + 1) ** skew``."""
    if count < 1:
        raise TrafficSpecError(f"need at least one key, got {count}")
    raw = [1.0 / (index + 1) ** skew for index in range(count)]
    total = sum(raw)
    return [weight / total for weight in raw]


@dataclass(frozen=True)
class KeyModel:
    """How lock targets are drawn: ``uniform``, or ``zipfian`` with
    *skew* > 0 (larger = hotter head)."""

    distribution: str = "uniform"
    skew: float = 1.0

    def __post_init__(self) -> None:
        if self.distribution not in KEY_DISTRIBUTIONS:
            raise TrafficSpecError(
                f"unknown key distribution {self.distribution!r} "
                f"(choose from {KEY_DISTRIBUTIONS})"
            )
        if self.distribution == "zipfian" and self.skew <= 0:
            raise TrafficSpecError(
                f"zipfian skew must be positive, got {self.skew}"
            )

    def weights(self, count: int) -> list[float]:
        """Per-key popularity weights, hottest first."""
        if self.distribution == "uniform":
            return [1.0 / count] * count
        return zipf_weights(count, self.skew)

    def to_dict(self) -> dict:
        payload: dict = {"distribution": self.distribution}
        if self.distribution == "zipfian":
            payload["skew"] = self.skew
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "KeyModel":
        _require_keys(payload, {"distribution", "skew"}, "keys")
        return cls(**payload)


@dataclass(frozen=True)
class MixModel:
    """Short transactions touch *entities_per_txn* entities; a
    *long_fraction* of arrivals are long-lived and touch
    *long_entities_per_txn* instead."""

    entities_per_txn: int = 2
    long_entities_per_txn: int | None = None
    long_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.entities_per_txn < 1:
            raise TrafficSpecError(
                f"entities_per_txn must be >= 1, got {self.entities_per_txn}"
            )
        if not 0.0 <= self.long_fraction <= 1.0:
            raise TrafficSpecError(
                f"long_fraction must be in [0, 1], got {self.long_fraction}"
            )
        if self.long_fraction > 0 and self.long_entities_per_txn is None:
            raise TrafficSpecError(
                "long_fraction > 0 needs long_entities_per_txn"
            )
        if (
            self.long_entities_per_txn is not None
            and self.long_entities_per_txn < self.entities_per_txn
        ):
            raise TrafficSpecError(
                "long transactions must touch at least as many entities "
                f"as short ones ({self.long_entities_per_txn} < "
                f"{self.entities_per_txn})"
            )

    def to_dict(self) -> dict:
        payload: dict = {"entities_per_txn": self.entities_per_txn}
        if self.long_entities_per_txn is not None:
            payload["long_entities_per_txn"] = self.long_entities_per_txn
        if self.long_fraction:
            payload["long_fraction"] = self.long_fraction
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MixModel":
        _require_keys(
            payload,
            {"entities_per_txn", "long_entities_per_txn", "long_fraction"},
            "mix",
        )
        return cls(**payload)


@dataclass(frozen=True)
class ArrivalModel:
    """``closed``: a fixed pool of *concurrency* clients, each starting
    its next transaction when the previous finishes.  ``open``: Poisson
    arrivals at *rate_per_1000_ticks* on the transport tick clock,
    independent of completions — the offered load stays constant even
    when the cluster saturates."""

    process: str = "closed"
    concurrency: int = 8
    rate_per_1000_ticks: float | None = None

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise TrafficSpecError(
                f"unknown arrival process {self.process!r} "
                f"(choose from {ARRIVAL_PROCESSES})"
            )
        if self.process == "closed" and self.concurrency < 1:
            raise TrafficSpecError(
                f"closed-loop concurrency must be >= 1, got {self.concurrency}"
            )
        if self.process == "open" and (
            self.rate_per_1000_ticks is None or self.rate_per_1000_ticks <= 0
        ):
            raise TrafficSpecError(
                "open-loop arrivals need a positive rate_per_1000_ticks"
            )

    def to_dict(self) -> dict:
        payload: dict = {"process": self.process}
        if self.process == "closed":
            payload["concurrency"] = self.concurrency
        else:
            payload["rate_per_1000_ticks"] = self.rate_per_1000_ticks
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ArrivalModel":
        _require_keys(
            payload,
            {"process", "concurrency", "rate_per_1000_ticks"},
            "arrival",
        )
        return cls(**payload)


@dataclass(frozen=True)
class LatencyModel:
    """Sites mapped to named *regions*, clients homed in
    *client_region*, and a per-ordered-pair *delay_ticks* matrix applied
    to every frame a client or site sends across regions."""

    regions: dict[int, str] = field(default_factory=dict)
    client_region: str = "local"
    delay_ticks: dict[str, dict[str, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.regions:
            raise TrafficSpecError("a latency model needs a site -> region map")
        used = sorted(set(self.regions.values()) | {self.client_region})
        for origin in used:
            row = self.delay_ticks.get(origin)
            if row is None:
                raise TrafficSpecError(
                    f"latency delay_ticks has no row for region {origin!r}"
                )
            for destination in used:
                ticks = row.get(destination)
                if ticks is None:
                    raise TrafficSpecError(
                        f"latency delay_ticks[{origin!r}] lacks an entry "
                        f"for region {destination!r}"
                    )
                if not isinstance(ticks, int) or ticks < 0:
                    raise TrafficSpecError(
                        f"latency delay_ticks[{origin!r}][{destination!r}] "
                        f"must be a non-negative integer, got {ticks!r}"
                    )

    def validate_sites(self, sites: int) -> None:
        """Every site ``1..sites`` must have a region."""
        missing = [site for site in range(1, sites + 1) if site not in self.regions]
        if missing:
            raise TrafficSpecError(
                f"latency regions missing sites {missing}"
            )
        unknown = [site for site in self.regions if not 1 <= site <= sites]
        if unknown:
            raise TrafficSpecError(
                f"latency regions name unknown sites {unknown} "
                f"(database has 1..{sites})"
            )

    def matrix(self):
        """The runtime-side :class:`repro.cluster.transport.
        LatencyMatrix` equivalent of this model."""
        from ..cluster.transport import LatencyMatrix

        return LatencyMatrix(
            regions=dict(self.regions),
            delay_ticks={
                origin: dict(row) for origin, row in self.delay_ticks.items()
            },
            client_region=self.client_region,
        )

    def to_dict(self) -> dict:
        return {
            "regions": {str(site): region for site, region in sorted(self.regions.items())},
            "client_region": self.client_region,
            "delay_ticks": {
                origin: dict(sorted(row.items()))
                for origin, row in sorted(self.delay_ticks.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencyModel":
        _require_keys(
            payload, {"regions", "client_region", "delay_ticks"}, "latency"
        )
        regions_raw = payload.get("regions", {})
        if not isinstance(regions_raw, dict):
            raise TrafficSpecError("latency regions must be an object")
        try:
            regions = {int(site): str(region) for site, region in regions_raw.items()}
        except (TypeError, ValueError):
            raise TrafficSpecError(
                f"latency regions keys must be site numbers, got "
                f"{sorted(regions_raw)}"
            ) from None
        return cls(
            regions=regions,
            client_region=payload.get("client_region", "local"),
            delay_ticks=payload.get("delay_ticks", {}),
        )


@dataclass(frozen=True)
class TrafficSpec:
    """One workload the arena (or ``cluster run --workload``) can run."""

    name: str
    entities: int
    sites: int
    transactions: int
    keys: KeyModel = field(default_factory=KeyModel)
    mix: MixModel = field(default_factory=MixModel)
    arrival: ArrivalModel = field(default_factory=ArrivalModel)
    latency: LatencyModel | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TrafficSpecError("a traffic spec needs a name")
        if self.entities < 1 or self.sites < 1:
            raise TrafficSpecError(
                f"need at least one entity and one site, got "
                f"{self.entities} entities / {self.sites} sites"
            )
        if self.transactions < 1:
            raise TrafficSpecError(
                f"need at least one transaction, got {self.transactions}"
            )
        if self.latency is not None:
            self.latency.validate_sites(self.sites)

    def scaled(self, *, transactions: int) -> "TrafficSpec":
        """This spec with a different transaction count (quick-mode
        benchmark runs shrink the committed specs this way)."""
        return dataclasses.replace(self, transactions=transactions)

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "entities": self.entities,
            "sites": self.sites,
            "transactions": self.transactions,
            "keys": self.keys.to_dict(),
            "mix": self.mix.to_dict(),
            "arrival": self.arrival.to_dict(),
        }
        if self.latency is not None:
            payload["latency"] = self.latency.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TrafficSpec":
        """Build a spec from parsed JSON; raises
        :class:`~repro.errors.TrafficSpecError` on malformed input."""
        _require_keys(
            payload,
            {
                "name",
                "entities",
                "sites",
                "transactions",
                "keys",
                "mix",
                "arrival",
                "latency",
            },
            "traffic spec",
        )
        for key in ("name", "entities", "sites", "transactions"):
            if key not in payload:
                raise TrafficSpecError(f"traffic spec lacks required key {key!r}")
        try:
            return cls(
                name=payload["name"],
                entities=payload["entities"],
                sites=payload["sites"],
                transactions=payload["transactions"],
                keys=KeyModel.from_dict(payload.get("keys", {"distribution": "uniform"})),
                mix=MixModel.from_dict(payload.get("mix", {})),
                arrival=ArrivalModel.from_dict(payload.get("arrival", {})),
                latency=(
                    LatencyModel.from_dict(payload["latency"])
                    if payload.get("latency") is not None
                    else None
                ),
            )
        except TypeError as exc:
            raise TrafficSpecError(f"malformed traffic spec: {exc}") from None

    @classmethod
    def load(cls, path: str) -> "TrafficSpec":
        """Read a spec from a JSON file (mirrors
        :meth:`repro.faults.FaultPlan.load`)."""
        with open(path, encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except ValueError as exc:
                raise TrafficSpecError(f"{path}: not valid JSON ({exc})") from None
        return cls.from_dict(payload)


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
@dataclass
class TrafficWorkload:
    """A concrete workload: distinct transaction instances plus the
    schedule and runtime knobs that drive them."""

    spec: TrafficSpec
    policy: str
    seed: int
    system: TransactionSystem
    #: Per-instance start ticks (open-loop), ``None`` for closed-loop.
    arrivals: list[int] | None
    #: Closed-loop client-pool size (ignored for open-loop runs).
    concurrency: int
    #: Instance names of the long-lived transactions in the mix.
    long_transactions: list[str] = field(default_factory=list)

    def cluster_kwargs(self) -> dict:
        """Keyword arguments for :func:`repro.cluster.run_cluster` /
        ``run_cluster_sync`` that replay this workload's arrival process
        and latency model."""
        kwargs: dict = {
            "rounds": 1,
            "concurrency": self.concurrency,
            "arrivals": self.arrivals,
        }
        if self.spec.latency is not None:
            kwargs["latency"] = self.spec.latency.matrix()
        return kwargs


def _weighted_sample(
    rng: random.Random, names: list[str], weights: list[float], count: int
) -> list[str]:
    """*count* distinct names drawn without replacement, probability
    proportional to weight."""
    pool = list(zip(names, weights))
    chosen: list[str] = []
    for _ in range(min(count, len(pool))):
        total = sum(weight for _, weight in pool)
        mark = rng.random() * total
        acc = 0.0
        for index, (name, weight) in enumerate(pool):
            acc += weight
            if mark < acc or index == len(pool) - 1:
                chosen.append(name)
                del pool[index]
                break
    return chosen


def _heap_parent_of(names: list[str]) -> dict[str, str | None]:
    """A heap-shaped tree over *names* (index ``i``'s parent is
    ``(i - 1) // 2``); with popularity-sorted names the hottest key is
    the root, which is where the tree protocol concentrates traffic
    anyway."""
    return {
        name: None if index == 0 else names[(index - 1) // 2]
        for index, name in enumerate(names)
    }


def _tree_transaction(
    name: str,
    database,
    parent_of: dict[str, str | None],
    children_of: dict[str, list[str]],
    weights_by_name: dict[str, float],
    rng: random.Random,
    walk_length: int,
) -> Transaction:
    """A crab-walk tree-protocol transaction: lock the child while
    holding the parent, release the parent — descending from a
    popularity-weighted start node with children chosen the same way.

    The protocol allows the *first* lock anywhere in the tree, and
    starting every walk at the root would make all transactions share
    it — a complete interaction graph whose Proposition-2 cycle vetting
    blows up combinatorially.  Weighted starts keep the hot head hot
    while leaving the interaction graph as sparse as the skew allows.
    """
    start = _weighted_sample(
        rng,
        list(parent_of),
        [weights_by_name[node] for node in parent_of],
        1,
    )[0]
    path = [start]
    cursor = start
    for _ in range(walk_length - 1):
        children = children_of.get(cursor, [])
        if not children:
            break
        picked = _weighted_sample(
            rng, children, [weights_by_name[child] for child in children], 1
        )
        cursor = picked[0]
        path.append(cursor)

    builder = TransactionBuilder(name, database)
    previous = None

    def emit(step):
        nonlocal previous
        if previous is not None:
            builder.precede(previous, step)
        previous = step
        return step

    emit(builder.lock(path[0]))
    emit(builder.update(path[0]))
    for index in range(1, len(path)):
        emit(builder.lock(path[index]))
        emit(builder.unlock(path[index - 1]))
        emit(builder.update(path[index]))
    emit(builder.unlock(path[-1]))
    return builder.build()


def _vetted_instances(
    spec: TrafficSpec,
    database,
    names: list[str],
    weights: list[float],
    rng: random.Random,
    draw_shape,
) -> tuple[list[Transaction], list[str]]:
    """Admission-filtered early-unlock transactions.

    Candidates are drawn with freely interleaved site chains (no
    two-phase or tree discipline — each entity's lock is released as
    soon as its update lands) and admitted one by one through a fresh
    :class:`~repro.service.registry.AdmissionRegistry`; rejected
    candidates, including vetting-budget exhaustions, are discarded and
    redrawn.  After ``transactions × _VET_ATTEMPT_FACTOR`` draws the
    generator settles for the smaller admitted set rather than loop
    forever on a spec too contended to fill.
    """
    # Lazy: the admission service is only needed for this one policy,
    # and nothing else in the workloads package depends on it.
    from ..errors import VettingBudgetError
    from ..service.cache import VerdictCache
    from ..service.pool import PairVettingPool
    from ..service.registry import AdmissionRegistry

    registry = AdmissionRegistry(
        cache=VerdictCache(),
        pool=PairVettingPool(workers=1),
        cycle_limit=VET_CYCLE_LIMIT,
    )
    instances: list[Transaction] = []
    long_names: list[str] = []
    attempts_left = spec.transactions * _VET_ATTEMPT_FACTOR
    try:
        while len(instances) < spec.transactions and attempts_left > 0:
            attempts_left -= 1
            is_long, touched = draw_shape()
            name = f"T{len(instances) + 1}"
            chosen = _weighted_sample(rng, names, weights, touched)
            candidate = random_transaction(
                name,
                database,
                rng,
                entities=chosen,
                cross_arcs=0,
                two_phase=False,
            )
            try:
                decision = registry.admit(candidate, want_certificate=False)
            except VettingBudgetError:
                continue
            if not decision.admitted:
                continue
            if is_long:
                long_names.append(name)
            instances.append(candidate)
    finally:
        registry.pool.close()
    return instances, long_names


def generate_workload(
    spec: TrafficSpec, *, policy: str = "2pl", seed: int = 0
) -> TrafficWorkload:
    """Instantiate *spec* under *policy* with *seed*.

    Deterministic: the same ``(spec, policy, seed)`` triple yields an
    identical transaction system (same step strings, same poset arcs)
    and an identical arrival schedule.  Every instance satisfies the
    paper's §2 constraints by construction — the
    :class:`~repro.core.transaction.Transaction` constructor validates
    each one.
    """
    if policy not in POLICIES:
        raise TrafficSpecError(
            f"unknown policy {policy!r} (choose from {POLICIES})"
        )
    rng = random.Random(f"{seed}/{spec.name}/{policy}")
    database = random_database(rng, entities=spec.entities, sites=spec.sites)
    names = sorted(database.entities, key=lambda n: int(n[1:]))
    weights = spec.keys.weights(len(names))
    weights_by_name = dict(zip(names, weights))
    parent_of = _heap_parent_of(names)
    children_of: dict[str, list[str]] = {}
    for child, parent in parent_of.items():
        if parent is not None:
            children_of.setdefault(parent, []).append(child)

    def draw_shape() -> tuple[bool, int]:
        is_long = (
            spec.mix.long_fraction > 0
            and rng.random() < spec.mix.long_fraction
        )
        touched = (
            spec.mix.long_entities_per_txn if is_long else spec.mix.entities_per_txn
        )
        return is_long, min(touched or 1, len(names))

    instances: list[Transaction] = []
    long_names: list[str] = []
    if policy == "vetted-optimal":
        instances, long_names = _vetted_instances(
            spec, database, names, weights, rng, draw_shape
        )
    else:
        for index in range(1, spec.transactions + 1):
            is_long, touched = draw_shape()
            instance_name = f"T{index}"
            if policy == "tree":
                instance = _tree_transaction(
                    instance_name,
                    database,
                    parent_of,
                    children_of,
                    weights_by_name,
                    rng,
                    walk_length=touched,
                )
            else:
                chosen = _weighted_sample(rng, names, weights, touched)
                instance = random_transaction(
                    instance_name,
                    database,
                    rng,
                    entities=chosen,
                    cross_arcs=0,
                    two_phase=True,
                )
            if is_long:
                long_names.append(instance_name)
            instances.append(instance)

    arrivals: list[int] | None = None
    if spec.arrival.process == "open":
        rate_per_tick = spec.arrival.rate_per_1000_ticks / 1000.0
        clock = 0.0
        arrivals = []
        for _ in instances:
            clock += rng.expovariate(rate_per_tick)
            arrivals.append(int(round(clock)))

    return TrafficWorkload(
        spec=spec,
        policy=policy,
        seed=seed,
        system=TransactionSystem(instances),
        arrivals=arrivals,
        concurrency=spec.arrival.concurrency,
        long_transactions=long_names,
    )
