"""Random distributed locked transactions and systems.

Generators are all seeded (`random.Random` instances), deterministic,
and produce transactions that satisfy the paper's §2 constraints by
construction:

* per entity: one ``L-update-U`` triple (the canonical locked access);
* per site: the triples of that site's entities randomly interleaved
  into the site chain (total order per site);
* cross-site precedences sampled *forward* along a random linear
  extension, so the result is always a partial order.

Knobs cover the paper's experimental axes: number of sites, entities,
how many entities each transaction touches, how many are shared, how
"tangled" the cross-site order is, and whether the two-phase discipline
is imposed.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..core.entity import DistributedDatabase
from ..core.schedule import TransactionSystem
from ..core.step import Step, StepKind
from ..core.transaction import Transaction
from ..errors import ModelError


def random_database(
    rng: random.Random, *, entities: int, sites: int
) -> DistributedDatabase:
    """Entities ``e0..e{n-1}`` spread over *sites* (every site nonempty
    when possible)."""
    if entities < 1 or sites < 1:
        raise ModelError("need at least one entity and one site")
    names = [f"e{i}" for i in range(entities)]
    assignment: dict[str, int] = {}
    # Guarantee coverage of the first min(entities, sites) sites.
    for index, name in enumerate(names):
        if index < sites:
            assignment[name] = index + 1
        else:
            assignment[name] = rng.randrange(1, sites + 1)
    return DistributedDatabase(assignment, sites=sites)


def _interleave_site_chains(
    rng: random.Random, triples: Sequence[tuple[Step, Step, Step]]
) -> list[Step]:
    """Randomly merge per-entity ``(L, update, U)`` triples into one site
    chain, preserving each triple's internal order."""
    queues = [list(triple) for triple in triples]
    chain: list[Step] = []
    while any(queues):
        choice = rng.choice([q for q in queues if q])
        chain.append(choice.pop(0))
    return chain


def _two_phase_site_chain(
    rng: random.Random, triples: Sequence[tuple[Step, Step, Step]]
) -> list[Step]:
    """A site chain in which all locks precede all unlocks."""
    locks = [triple[0] for triple in triples]
    updates = [triple[1] for triple in triples]
    unlocks = [triple[2] for triple in triples]
    rng.shuffle(locks)
    rng.shuffle(updates)
    rng.shuffle(unlocks)
    return locks + updates + unlocks


def random_transaction(
    name: str,
    database: DistributedDatabase,
    rng: random.Random,
    *,
    entities: Sequence[str] | None = None,
    cross_arcs: int = 0,
    two_phase: bool = False,
) -> Transaction:
    """A random locked transaction touching *entities* (default: all).

    *cross_arcs* extra precedences are sampled between steps at
    different sites, always forward along a hidden random linear
    extension so acyclicity is guaranteed.  With *two_phase*, every site
    chain is lock-phase-then-unlock-phase **and** cross-site arcs are
    added so that globally every lock precedes every unlock.
    """
    touched = list(entities if entities is not None else database.entities)
    if not touched:
        raise ModelError(f"{name}: a transaction needs at least one entity")
    triples = {
        entity: (
            Step(StepKind.LOCK, entity),
            Step(StepKind.UPDATE, entity),
            Step(StepKind.UNLOCK, entity),
        )
        for entity in touched
    }
    by_site: dict[int, list[tuple[Step, Step, Step]]] = {}
    for entity in touched:
        by_site.setdefault(database.site_of(entity), []).append(
            triples[entity]
        )
    precedences: list[tuple[Step, Step]] = []
    chains: dict[int, list[Step]] = {}
    for site, site_triples in by_site.items():
        if two_phase:
            chain = _two_phase_site_chain(rng, site_triples)
        else:
            chain = _interleave_site_chains(rng, site_triples)
        chains[site] = chain
        precedences.extend(zip(chain, chain[1:]))

    if two_phase and len(chains) > 1:
        # Globally order every lock before every unlock: each site's last
        # lock precedes every other site's first unlock.
        for site, chain in chains.items():
            last_lock = max(
                (i for i, s in enumerate(chain) if s.is_lock), default=None
            )
            for other_site, other_chain in chains.items():
                if other_site == site:
                    continue
                first_unlock = next(
                    (s for s in other_chain if s.is_unlock), None
                )
                if last_lock is not None and first_unlock is not None:
                    precedences.append((chain[last_lock], first_unlock))

    # A hidden global linear extension = random merge of the site chains;
    # cross-site arcs sampled forward along it can never form a cycle.
    order: list[Step] = []
    cursors = {site: 0 for site in chains}
    while any(cursors[site] < len(chains[site]) for site in chains):
        site = rng.choice(
            [s for s in chains if cursors[s] < len(chains[s])]
        )
        order.append(chains[site][cursors[site]])
        cursors[site] += 1
    position = {step: index for index, step in enumerate(order)}

    all_steps = [step for chain in chains.values() for step in chain]
    for _ in range(cross_arcs):
        a, b = rng.sample(all_steps, 2)
        if position[a] > position[b]:
            a, b = b, a
        if database.same_site(a.entity, b.entity):
            continue
        if two_phase and a.is_unlock and b.is_lock:
            continue  # keep the two-phase property
        precedences.append((a, b))

    return Transaction(name, database, all_steps, precedences)


def random_pair_system(
    rng: random.Random,
    *,
    sites: int = 2,
    entities: int = 4,
    shared: int | None = None,
    cross_arcs: int = 1,
    two_phase: bool = False,
) -> TransactionSystem:
    """A random two-transaction system.

    *shared* entities are locked by both transactions (default: all of
    them); the rest are split between the two.
    """
    database = random_database(rng, entities=entities, sites=sites)
    names = list(database.entities)
    rng.shuffle(names)
    if shared is None:
        shared = entities
    shared = min(shared, entities)
    common = names[:shared]
    rest = names[shared:]
    half = len(rest) // 2
    first_entities = common + rest[:half]
    second_entities = common + rest[half:]
    first = random_transaction(
        "T1",
        database,
        rng,
        entities=first_entities,
        cross_arcs=cross_arcs,
        two_phase=two_phase,
    )
    second = random_transaction(
        "T2",
        database,
        rng,
        entities=second_entities,
        cross_arcs=cross_arcs,
        two_phase=two_phase,
    )
    return TransactionSystem([first, second])


def random_system(
    rng: random.Random,
    *,
    transactions: int,
    sites: int = 2,
    entities: int = 5,
    entities_per_transaction: int = 3,
    cross_arcs: int = 0,
    two_phase: bool = False,
) -> TransactionSystem:
    """A random k-transaction system (for Proposition 2 experiments)."""
    database = random_database(rng, entities=entities, sites=sites)
    names = list(database.entities)
    members = []
    for index in range(transactions):
        chosen = rng.sample(
            names, min(entities_per_transaction, len(names))
        )
        members.append(
            random_transaction(
                f"T{index + 1}",
                database,
                rng,
                entities=chosen,
                cross_arcs=cross_arcs,
                two_phase=two_phase,
            )
        )
    return TransactionSystem(members)


def random_total_order_pair(
    rng: random.Random, *, entities: int = 4
) -> tuple[TransactionSystem, list[Step], list[Step]]:
    """A centralized (single-site) totally ordered pair, for the
    geometric experiments of §3."""
    database = DistributedDatabase.single_site(
        [f"e{i}" for i in range(entities)]
    )
    first = random_transaction("t1", database, rng)
    second = random_transaction("t2", database, rng)
    system = TransactionSystem([first, second])
    return system, first.a_linear_extension(), second.a_linear_extension()
