"""Programmatic reconstructions of the paper's figures.

The JCSS scan's figures are hand-drawn; exact arc sets are not always
recoverable from the text.  Each builder below therefore reconstructs a
system *verified to exhibit exactly the properties the paper states* for
that figure (the verifications live in ``tests/workloads`` and the
benchmark harness):

* :func:`figure_1` — a two-site pair (x, y at site 1; w, z at site 2)
  that is **unsafe**, with a non-serializable schedule (Fig. 1).
* :func:`figure_2_total_orders` — the totally ordered pair whose
  coordinated plane illustrates Proposition 1 (Fig. 2): entities x, y, z
  with a schedule curve separating the x- and z-rectangles.
* :func:`figure_3` — a two-site pair that is unsafe although one of its
  extension pairs ``{t1, t2}`` is safe (Figs. 3c/3d), with ``D(T1, T2)``
  admitting the dominator ``{x, y}`` (Fig. 3e).
* :func:`figure_5` — the four-site pair whose ``D`` is **not** strongly
  connected yet the system is **safe**: the only dominator is
  ``{x1, x2}`` and closing with respect to it forces ``Ux1`` to both
  precede and follow ``Ux2`` in ``t1`` (§4's discussion).
* :func:`figure_8_formula` — ``F = (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ x2 ∨ ¬x3)``,
  the running example of the Theorem 3 reduction (Figs. 8-9).
"""

from __future__ import annotations

from ..core.entity import DistributedDatabase
from ..core.schedule import TransactionSystem
from ..core.transaction import Transaction, TransactionBuilder
from ..logic.cnf import CnfFormula


def figure_1() -> TransactionSystem:
    """A two-site unsafe pair: x, y stored at site 1; w, z at site 2.

    ``T1`` locks x, y (site 1) and w (site 2); ``T2`` locks x (site 1)
    and w, z (site 2); they conflict on x and w.  ``T1`` funnels x
    before w, ``T2`` funnels w before x, so ``D(T1, T2)`` is the single
    arc ``x -> w`` — not strongly connected, hence unsafe (Theorem 2);
    the schedule letting ``T1`` win x while ``T2`` wins w is
    non-serializable.
    """
    db = DistributedDatabase({"x": 1, "y": 1, "w": 2, "z": 2})
    t1 = TransactionBuilder("T1", db)
    lx, _, ux = t1.access("x")
    t1.access("y")
    lw1, _, _ = t1.access("w")
    t1.precede(ux, lw1)  # x strictly before w within T1
    t2 = TransactionBuilder("T2", db)
    lw2, _, uw2 = t2.access("w")
    t2.access("z")
    lx2, _, _ = t2.access("x")
    t2.precede(uw2, lx2)  # w strictly before x within T2
    return TransactionSystem([t1.build(), t2.build()])


def figure_2_total_orders():
    """The totally ordered pair of Fig. 2 (centralized database).

    ``t1 = Lx Ly x y Ux Uy Lz z Uz`` (9 steps) against a ``t2`` locking
    x, z and y; the plane contains the x-, y- and z-rectangles and the
    schedule ``h`` that separates the x- and z-rectangles.

    Returns ``(system, t1_steps, t2_steps)``.
    """
    db = DistributedDatabase.single_site(["x", "y", "z"])
    t1 = TransactionBuilder("t1", db)
    lx = t1.lock("x")
    ly = t1.lock("y")
    t1.update("x")
    t1.update("y")
    t1.unlock("x")
    t1.unlock("y")
    t1.lock("z")
    t1.update("z")
    t1.unlock("z")
    t2 = TransactionBuilder("t2", db)
    t2.lock("z")
    t2.update("z")
    t2.lock("x")
    t2.update("x")
    t2.unlock("z")
    t2.lock("y")
    t2.update("y")
    t2.unlock("y")
    t2.unlock("x")
    first, second = t1.build(), t2.build()
    return (
        TransactionSystem([first, second]),
        first.a_linear_extension(),
        second.a_linear_extension(),
    )


def figure_3() -> TransactionSystem:
    """Fig. 3's phenomenon: the distributed pair is unsafe, yet some
    extension pair ``{t1, t2}`` is safe while another is not.

    x and y live at site 1, z at site 2.  Both transactions hold x and y
    two-phase at site 1 (so ``D`` restricted to {x, y} is the
    ``x <-> y`` SCC), and each also locks z with *no* cross-site
    precedences — leaving z unordered, isolated in ``D(T1, T2)``, and
    making the dominator ``{x, y}`` exist: the system is unsafe by
    Theorem 2.  Extensions that interleave z inside the two-phase region
    reconnect ``D(t1, t2)`` (safe pair, Fig. 3c); extensions that push z
    to one end leave it separated (unsafe pair, Fig. 3d).
    """
    db = DistributedDatabase({"x": 1, "y": 1, "z": 2})
    t1 = TransactionBuilder("T1", db)
    t1.lock("x")
    t1.update("x")
    t1.lock("y")
    t1.update("y")
    t1.unlock("x")
    t1.unlock("y")
    t1.access("z")
    t2 = TransactionBuilder("T2", db)
    t2.lock("y")
    t2.update("y")
    t2.lock("x")
    t2.update("x")
    t2.unlock("y")
    t2.unlock("x")
    t2.access("z")
    return TransactionSystem([t1.build(), t2.build()])


def figure_3_extension_pairs():
    """The safe and unsafe extension pairs of Figs. 3c/3d.

    Returns ``(safe_pair, unsafe_pair)``, each a tuple ``(t1, t2)`` of
    step sequences compatible with :func:`figure_3`'s transactions.
    """
    system = figure_3()
    first, second = system.pair()

    def steps_of(tx: Transaction, order: list[str]) -> list:
        lookup = {str(step): step for step in tx.steps}
        return [lookup[name] for name in order]

    # Safe: z interleaved inside the two-phase region on both sides,
    # making every rectangle pair mutually overlapping in D(t1, t2).
    safe = (
        steps_of(first, ["Lz", "z", "Lx", "x", "Ly", "y", "Ux", "Uy", "Uz"]),
        steps_of(second, ["Ly", "y", "Lz", "z", "Lx", "x", "Uy", "Ux", "Uz"]),
    )
    # Unsafe: z pushed entirely after site 1's work in t1 and entirely
    # before it in t2 — its rectangle separates from x's and y's.
    unsafe = (
        steps_of(first, ["Lx", "x", "Ly", "y", "Ux", "Uy", "Lz", "z", "Uz"]),
        steps_of(second, ["Lz", "z", "Uz", "Ly", "y", "Lx", "x", "Uy", "Ux"]),
    )
    return safe, unsafe


def figure_5() -> TransactionSystem:
    """The four-site safe system whose ``D(T1, T2)`` is *not* strongly
    connected — strong connectivity is not necessary beyond two sites.

    Four entities x1, x2, y1, y2, each on its own site.  ``D`` consists
    of two 2-SCCs, ``{x1, x2} -> {y1, y2}`` (arcs x1<->x2, y1<->y2,
    x1->y1, x2->y2), so ``X = {x1, x2}`` is the only dominator.  Two
    additional *half-arc* precedences per transaction (``Ly1 <1 Ux1``,
    ``Ly2 <1 Ux2``; ``Lx2 <2 Uy1``, ``Lx1 <2 Uy2``) arm the closure
    trap: closing with respect to ``X`` forces ``Ux2 <1 Ux1`` (via
    z = y1) *and* ``Ux1 <1 Ux2`` (via z = y2) — a cycle, exactly the
    contradiction the paper describes for its Fig. 5.  Hence no
    certificate exists and the system is safe.
    """
    entities = ["x1", "x2", "y1", "y2"]
    db = DistributedDatabase.one_entity_per_site(entities)
    builders = {}
    steps = {}
    for name in ("T1", "T2"):
        builder = TransactionBuilder(name, db)
        for entity in entities:
            steps[(name, entity)] = builder.access(entity)
        builders[name] = builder

    def lk(name: str, entity: str):
        return steps[(name, entity)][0]

    def ul(name: str, entity: str):
        return steps[(name, entity)][2]

    t1, t2 = builders["T1"], builders["T2"]
    d_arcs = [("x1", "x2"), ("x2", "x1"), ("y1", "y2"), ("y2", "y1"),
              ("x1", "y1"), ("x2", "y2")]
    for a, b in d_arcs:
        t1.precede(lk("T1", a), ul("T1", b))  # La <1 Ub
        t2.precede(lk("T2", b), ul("T2", a))  # Lb <2 Ua
    # Closure-trap half-arcs (create no D arcs).
    t1.precede(lk("T1", "y1"), ul("T1", "x1"))  # Ly1 <1 Ux1
    t1.precede(lk("T1", "y2"), ul("T1", "x2"))  # Ly2 <1 Ux2
    t2.precede(lk("T2", "x2"), ul("T2", "y1"))  # Lx2 <2 Uy1
    t2.precede(lk("T2", "x1"), ul("T2", "y2"))  # Lx1 <2 Uy2
    return TransactionSystem([t1.build(), t2.build()])


def figure_8_formula() -> CnfFormula:
    """The running example of §5: ``(x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ x2 ∨ ¬x3)``."""
    return CnfFormula.parse("(x1 | x2 | x3) & (~x1 | x2 | ~x3)")
