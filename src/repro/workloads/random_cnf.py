"""Random CNF formulas in Theorem 3's restricted form.

Sampling respects the occurrence budget directly (each variable at most
twice unnegated, at most once negated; clauses of two or three
literals), so every formula is immediately acceptable to
:func:`repro.core.reduction.reduce_cnf_to_pair`.
"""

from __future__ import annotations

import random

from ..errors import ReductionError
from ..logic.cnf import Clause, CnfFormula, Literal


def random_restricted_cnf(
    rng: random.Random,
    *,
    variables: int,
    clauses: int,
    clause_size: tuple[int, int] = (2, 3),
) -> CnfFormula:
    """A random formula with *variables* variables and *clauses* clauses
    inside the restricted occurrence budget.

    Raises :class:`ReductionError` when the budget cannot supply enough
    literal occurrences (each variable offers at most three).
    """
    lo, hi = clause_size
    if not 2 <= lo <= hi <= 3:
        raise ReductionError("clause sizes must lie within [2, 3]")
    names = [f"x{i + 1}" for i in range(variables)]
    budget: dict[str, list[int]] = {name: [2, 1] for name in names}

    def pick_literal(within: set[str]) -> Literal | None:
        """Sample a literal, weighted toward variables with the most
        remaining budget so that tight shapes stay feasible."""
        candidates: list[tuple[int, Literal]] = []
        for name in names:
            if name in within:
                continue
            positive, negative = budget[name]
            weight = positive + negative
            if positive > 0:
                candidates.append((weight, Literal(name, False)))
            if negative > 0:
                candidates.append((weight, Literal(name, True)))
        if not candidates:
            return None
        best = max(weight for weight, _ in candidates)
        pool = [lit for weight, lit in candidates if weight == best]
        return rng.choice(pool)

    result: list[Clause] = []
    for _ in range(clauses):
        size = rng.randint(lo, hi)
        clause: list[Literal] = []
        used: set[str] = set()
        for _ in range(size):
            literal = pick_literal(used)
            if literal is None:
                break
            clause.append(literal)
            used.add(literal.variable)
            budget[literal.variable][1 if literal.negated else 0] -= 1
        if len(clause) < 2:
            raise ReductionError(
                f"occurrence budget exhausted: cannot build {clauses} "
                f"clauses from {variables} variables"
            )
        result.append(Clause(tuple(clause)))
    formula = CnfFormula(result)
    assert formula.is_restricted_form()
    return formula
