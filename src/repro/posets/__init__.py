"""Finite partial orders and their linear extensions (paper §2, Lemma 1)."""

from .extensions import count_linear_extensions, extension_pairs, linear_extensions
from .poset import NotAPartialOrderError, Poset

__all__ = [
    "NotAPartialOrderError",
    "Poset",
    "count_linear_extensions",
    "extension_pairs",
    "linear_extensions",
]
