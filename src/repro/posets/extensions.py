"""Linear-extension enumeration and counting.

Lemma 1 of the paper: ``{T1, T2}`` is safe iff ``{t1, t2}`` is safe for
*all* linear extensions ``t1 ∈ T1``, ``t2 ∈ T2``.  The exhaustive deciders
and many cross-validation tests therefore need to enumerate linear
extensions; the enumeration below is the classic backtracking scheme over
currently-minimal items (the same family as Varol–Rotem), yielding
extensions in a deterministic order.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from itertools import product

from .poset import Poset


def linear_extensions(
    poset: Poset, limit: int | None = None
) -> Iterator[list[Hashable]]:
    """Yield every linear extension of *poset*.

    *limit* bounds the number produced (a guard for tests that probe
    potentially exponential inputs).
    """
    graph = poset.graph()
    indegree = {item: graph.in_degree(item) for item in graph.nodes()}
    total = len(poset)
    prefix: list[Hashable] = []
    produced = 0

    def backtrack() -> Iterator[list[Hashable]]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if len(prefix) == total:
            produced += 1
            yield list(prefix)
            return
        for item, degree in list(indegree.items()):
            if degree != 0:
                continue
            indegree[item] = -1
            for nxt in graph.successors(item):
                indegree[nxt] -= 1
            prefix.append(item)
            yield from backtrack()
            prefix.pop()
            for nxt in graph.successors(item):
                indegree[nxt] += 1
            indegree[item] = 0
            if limit is not None and produced >= limit:
                return

    yield from backtrack()


def count_linear_extensions(poset: Poset, cap: int | None = None) -> int:
    """Count linear extensions, optionally stopping early at *cap*.

    Counting is #P-complete in general; this memoized search over
    down-sets is exact and fast for the small transactions used in tests.
    """
    graph = poset.graph()
    items = graph.nodes()
    index = {item: i for i, item in enumerate(items)}
    successors = {item: graph.successors(item) for item in items}
    predecessor_masks = [0] * len(items)
    for item in items:
        for nxt in successors[item]:
            predecessor_masks[index[nxt]] |= 1 << index[item]

    from functools import lru_cache

    @lru_cache(maxsize=None)
    def count(done_mask: int) -> int:
        if done_mask == (1 << len(items)) - 1:
            return 1
        total = 0
        for i in range(len(items)):
            if done_mask >> i & 1:
                continue
            if predecessor_masks[i] & ~done_mask:
                continue  # some predecessor not yet placed
            total += count(done_mask | (1 << i))
            if cap is not None and total >= cap:
                return total
        return total

    return count(0)


def extension_pairs(
    first: Poset,
    second: Poset,
    limit: int | None = None,
) -> Iterator[tuple[list[Hashable], list[Hashable]]]:
    """Yield pairs ``(t1, t2)`` of linear extensions — the universe Lemma 1
    quantifies over.  *limit* caps the number of pairs."""
    produced = 0
    firsts = list(linear_extensions(first))
    seconds = list(linear_extensions(second))
    for t1, t2 in product(firsts, seconds):
        yield t1, t2
        produced += 1
        if limit is not None and produced >= limit:
            return
