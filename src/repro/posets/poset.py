"""Finite partial orders.

A distributed transaction *is* a partial order of steps (paper §2), and
Lemma 1 reduces safety of a pair of partial orders to safety of all pairs
of their linear extensions.  :class:`Poset` packages the order-theoretic
queries the core needs: strict precedence, comparability, covers,
compatibility of a total order, and restriction to a subset of items.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from ..graphs import (
    CycleError,
    DiGraph,
    TransitiveClosure,
    topological_sort,
    transitive_reduction,
)


class NotAPartialOrderError(ValueError):
    """Raised when the precedence relation supplied contains a cycle."""


class Poset:
    """An immutable finite poset built from items and precedence pairs."""

    def __init__(
        self,
        items: Iterable[Hashable],
        precedences: Iterable[tuple[Hashable, Hashable]] = (),
    ) -> None:
        self._graph = DiGraph(items)
        for before, after in precedences:
            if not self._graph.has_node(before) or not self._graph.has_node(after):
                raise KeyError(
                    f"precedence ({before!r}, {after!r}) mentions an unknown item"
                )
            self._graph.add_arc(before, after)
        try:
            self._closure = TransitiveClosure(self._graph)
        except CycleError as exc:
            raise NotAPartialOrderError(
                f"precedence relation contains a cycle: {exc.cycle}"
            ) from exc

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def items(self) -> list[Hashable]:
        """All items, in insertion order."""
        return self._graph.nodes()

    def __len__(self) -> int:
        return self._graph.node_count()

    def __contains__(self, item: Hashable) -> bool:
        return self._graph.has_node(item)

    def precedes(self, a: Hashable, b: Hashable) -> bool:
        """Strictly precedes: ``a < b`` in the order (irreflexive)."""
        if a == b:
            return False
        return self._closure.reaches(a, b)

    def comparable(self, a: Hashable, b: Hashable) -> bool:
        """True iff ``a < b`` or ``b < a``."""
        return self.precedes(a, b) or self.precedes(b, a)

    def concurrent(self, a: Hashable, b: Hashable) -> bool:
        """True iff distinct and incomparable (the paper's 'concurrent')."""
        return a != b and not self.comparable(a, b)

    def arcs(self) -> list[tuple[Hashable, Hashable]]:
        """The precedence arcs as given (not the full closure)."""
        return self._graph.arcs()

    def graph(self) -> DiGraph:
        """A copy of the underlying precedence DAG."""
        return self._graph.copy()

    def cover_graph(self) -> DiGraph:
        """The Hasse diagram (transitive reduction) of the order."""
        return transitive_reduction(self._graph)

    def down_set(self, item: Hashable) -> set[Hashable]:
        """All strict predecessors of *item*."""
        return {
            other for other in self.items() if self.precedes(other, item)
        }

    def up_set(self, item: Hashable) -> set[Hashable]:
        """All strict successors of *item*."""
        return self._closure.descendants(item) - {item}

    def minimal_items(self) -> list[Hashable]:
        """Items with no strict predecessor."""
        graph = self._graph
        return [item for item in graph.nodes() if graph.in_degree(item) == 0]

    def maximal_items(self) -> list[Hashable]:
        """Items with no strict successor."""
        graph = self._graph
        return [item for item in graph.nodes() if graph.out_degree(item) == 0]

    # ------------------------------------------------------------------
    # Derived orders
    # ------------------------------------------------------------------
    def with_precedences(
        self, extra: Iterable[tuple[Hashable, Hashable]]
    ) -> "Poset":
        """A new poset with additional precedences (used by the closure
        construction of Theorem 2, which repeatedly strengthens ``T1`` and
        ``T2``).  Raises :class:`NotAPartialOrderError` if the additions
        create a cycle — which is precisely the Fig. 5 phenomenon."""
        return Poset(self.items(), list(self._graph.arcs()) + list(extra))

    def restrict(self, keep: Iterable[Hashable]) -> "Poset":
        """The induced sub-order on *keep* (inherits all precedences)."""
        kept = set(keep)
        items = [item for item in self.items() if item in kept]
        pairs = [
            (a, b)
            for a in items
            for b in items
            if self.precedes(a, b)
        ]
        return Poset(items, pairs)

    # ------------------------------------------------------------------
    # Linear extensions
    # ------------------------------------------------------------------
    def a_linear_extension(self, key=None) -> list[Hashable]:
        """One linear extension; *key* optionally drives greedy priority
        (smaller key emitted earlier among available items)."""
        return topological_sort(self._graph, key=key)

    def is_linear_extension(self, order: Sequence[Hashable]) -> bool:
        """True iff *order* is a permutation of the items compatible with
        every precedence (a total order t with t ∈ T, paper §2)."""
        if len(order) != len(self) or set(order) != set(self.items()):
            return False
        position = {item: index for index, item in enumerate(order)}
        return all(
            position[a] < position[b]
            for a, b in self._graph.arcs()
        )

    def is_total(self) -> bool:
        """True iff the order is already a chain."""
        items = self.items()
        return all(
            self.comparable(a, b)
            for i, a in enumerate(items)
            for b in items[i + 1 :]
        )
