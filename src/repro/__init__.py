"""repro — a reproduction of Kanellakis & Papadimitriou,
*Is Distributed Locking Harder?* (PODS 1982 / JCSS 28:103-120, 1984).

The package decides **safety** of distributed locked transaction
systems — whether every legal interleaving is serializable — and
implements every construction in the paper:

* the model (§2): distributed databases, partially ordered locked
  transactions, legal schedules — :mod:`repro.core`;
* the geometric method (§3, Fig. 2, Proposition 1) —
  :mod:`repro.core.geometry`;
* the conflict digraph ``D(T1, T2)`` and the strong-connectivity safety
  criterion (Theorems 1-2, Corollaries 1-2) — :mod:`repro.core.dgraph`,
  :mod:`repro.core.safety`;
* dominators, closure and explicit unsafeness certificates (§4) —
  :mod:`repro.core.closure`, :mod:`repro.core.certificates`;
* the coNP-completeness reduction (§5, Theorem 3, Figs. 8-9) —
  :mod:`repro.core.reduction`;
* many-transaction systems (§6, Proposition 2) — :mod:`repro.core.multi`;
* locking policies, including distributed two-phase locking —
  :mod:`repro.policies`;
* a step-granular distributed lock-manager simulator to *run* systems
  and watch unsafe ones mis-serialize — :mod:`repro.sim`.

Quickstart::

    from repro import DistributedDatabase, TransactionBuilder, TransactionSystem
    from repro import decide_safety

    db = DistributedDatabase({"x": 1, "y": 1, "z": 2})
    t1 = TransactionBuilder("T1", db)
    t1.access("x"); t1.access("z")
    t2 = TransactionBuilder("T2", db)
    t2.access("z"); t2.access("x")
    verdict = decide_safety(TransactionSystem([t1.build(), t2.build()]))
    print(verdict.safe, verdict.method)
"""

from .core import (
    DistributedDatabase,
    GeometricPicture,
    SafetyVerdict,
    Schedule,
    ScheduledStep,
    Step,
    StepKind,
    Transaction,
    TransactionBuilder,
    TransactionSystem,
    UnsafenessCertificate,
    certificate_from_dominator,
    certificate_via_corollary_2,
    d_graph,
    decide_safety,
    decide_safety_exact,
    decide_safety_exhaustive,
    decide_safety_multi,
    find_nonserializable_schedule,
    is_safe_sufficient,
    is_safe_two_site,
)
from .errors import (
    AdmissionError,
    CertificateError,
    DatabaseError,
    LockingError,
    ModelError,
    ReductionError,
    ReproError,
    ScheduleError,
    SiteOrderError,
    TransactionError,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "CertificateError",
    "DatabaseError",
    "DistributedDatabase",
    "GeometricPicture",
    "LockingError",
    "ModelError",
    "ReductionError",
    "ReproError",
    "SafetyVerdict",
    "Schedule",
    "ScheduleError",
    "ScheduledStep",
    "SiteOrderError",
    "Step",
    "StepKind",
    "Transaction",
    "TransactionBuilder",
    "TransactionError",
    "TransactionSystem",
    "UnsafenessCertificate",
    "__version__",
    "certificate_from_dominator",
    "certificate_via_corollary_2",
    "d_graph",
    "decide_safety",
    "decide_safety_exact",
    "decide_safety_exhaustive",
    "decide_safety_multi",
    "find_nonserializable_schedule",
    "is_safe_sufficient",
    "is_safe_two_site",
]
