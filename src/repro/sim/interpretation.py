"""Concrete interpretations of the update functions.

The paper quantifies serializability over *all* interpretations of the
``f_s``; :mod:`repro.core.herbrand` handles that symbolically.  This
module goes the other way: it instantiates the ``f_s`` with concrete
arithmetic and *executes* schedules, so that a non-serializable
interleaving manifests as a final database state no serial execution
can produce — data corruption you can print.

Each update step ``s`` gets the affine function

    new_value = a_s * old_value + b_s

with odd multipliers ``a_s`` drawn from a seeded RNG (odd ⇒ invertible
mod 2^64, so distinct write orders compose to distinct values and
collisions cannot hide a violation).  Affine maps compose but do not
commute, which is exactly what distinguishes write orders.

:func:`detects_violation` is the headline: for a legal schedule, the
concrete final state differs from every serial execution's iff the
schedule is non-serializable (machine-checked against the conflict
test in the suite).
"""

from __future__ import annotations

import random
from itertools import permutations

from ..core.schedule import Schedule
from ..core.step import Step

MODULUS = 1 << 64


class AffineInterpretation:
    """A concrete assignment of affine functions to update steps."""

    def __init__(self, system, seed: int = 0) -> None:
        self.system = system
        rng = random.Random(seed)
        self._coefficients: dict[tuple[str, Step], tuple[int, int]] = {}
        for tx in system.transactions:
            for step in tx.steps:
                if step.is_update:
                    multiplier = rng.randrange(1, MODULUS, 2)  # odd
                    offset = rng.randrange(MODULUS)
                    self._coefficients[(tx.name, step)] = (
                        multiplier,
                        offset,
                    )

    # ------------------------------------------------------------------
    def run(
        self, steps, initial: dict[str, int] | None = None
    ) -> dict[str, int]:
        """Execute ``(transaction, step)`` pairs; return the final state."""
        state: dict[str, int] = {
            entity: 0 for entity in self.system.database.entities
        }
        if initial:
            state.update(initial)
        for name, step in steps:
            if not step.is_update:
                continue
            multiplier, offset = self._coefficients[(name, step)]
            state[step.entity] = (
                multiplier * state[step.entity] + offset
            ) % MODULUS
        return state

    def run_schedule(self, schedule: Schedule) -> dict[str, int]:
        return self.run(
            (item.transaction, item.step) for item in schedule.steps
        )

    def serial_states(self) -> dict[tuple[str, ...], dict[str, int]]:
        """Final state of every serial execution order."""
        results: dict[tuple[str, ...], dict[str, int]] = {}
        for order in permutations(self.system.names):
            serial = self.system.serial_schedule(list(order))
            results[order] = self.run_schedule(serial)
        return results

    def matching_serial_order(
        self, schedule: Schedule
    ) -> tuple[str, ...] | None:
        """The serial order producing the same concrete final state, or
        ``None`` (a detected violation)."""
        target = self.run_schedule(schedule)
        for order, state in self.serial_states().items():
            if state == target:
                return order
        return None

    def detects_violation(self, schedule: Schedule) -> bool:
        """True iff no serial execution reproduces the schedule's final
        state — concrete evidence of non-serializability."""
        return self.matching_serial_order(schedule) is None
