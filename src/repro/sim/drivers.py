"""Interleaving drivers: who moves next.

The engine is driver-agnostic; a driver is any callable receiving the
list of currently *executable* candidates (transaction name, step) and
returning the chosen one.  Three standard drivers:

* :class:`RandomDriver` — seeded uniform choice; the workhorse for
  "run the unsafe system many times and count mis-serializations";
* :class:`ReplayDriver` — replays a prescribed schedule, e.g. the
  non-serializable schedule of an
  :class:`~repro.core.certificates.UnsafenessCertificate`, making the
  static analysis demonstrably *executable*;
* :class:`RoundRobinDriver` — deterministic fair rotation.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..core.schedule import Schedule
from ..core.step import Step
from ..errors import ScheduleError

Candidate = tuple[str, Step]


class RandomDriver:
    """Uniformly random choice among executable steps."""

    def __init__(self, rng: random.Random | int | None = None) -> None:
        if isinstance(rng, random.Random):
            self._rng = rng
        else:
            self._rng = random.Random(rng)

    def __call__(self, candidates: Sequence[Candidate]) -> Candidate:
        return self._rng.choice(list(candidates))


class RoundRobinDriver:
    """Rotate fairly over transaction names."""

    def __init__(self) -> None:
        self._last: str | None = None

    def __call__(self, candidates: Sequence[Candidate]) -> Candidate:
        names = sorted({name for name, _ in candidates})
        if self._last in names:
            index = (names.index(self._last) + 1) % len(names)
        else:
            index = 0
        # Prefer the next name in rotation that has a candidate.
        chosen_name = names[index]
        self._last = chosen_name
        for candidate in candidates:
            if candidate[0] == chosen_name:
                return candidate
        return candidates[0]


class ReplayDriver:
    """Drive the engine along a prescribed schedule.

    Raises :class:`ScheduleError` if the schedule's next step is not
    executable when its turn comes — which cannot happen for a legal
    schedule of the same system, so a failure here flags a bug in
    either the schedule or the engine.
    """

    def __init__(self, schedule: Schedule) -> None:
        self._queue = [
            (item.transaction, item.step) for item in schedule.steps
        ]
        self._cursor = 0

    def __call__(self, candidates: Sequence[Candidate]) -> Candidate:
        if self._cursor >= len(self._queue):
            raise ScheduleError(
                "replay schedule exhausted but the engine still has "
                "executable steps"
            )
        wanted = self._queue[self._cursor]
        if wanted not in candidates:
            raise ScheduleError(
                f"replay schedule wants {wanted[1]}[{wanted[0]}] but it "
                f"is not executable now (candidates: "
                f"{[f'{s}[{n}]' for n, s in candidates]})"
            )
        self._cursor += 1
        return wanted
