"""A step-granular distributed lock-manager simulator.

Per-site exclusive lock tables, pluggable interleaving drivers, global
wait-for-graph deadlock detection and serializability-checked execution
histories — the system substrate on which unsafe transaction systems
visibly mis-serialize and safe ones never do.
"""

from .analysis import (
    DeadlockReport,
    conflicts_from_site_orders,
    deadlock_possible_exhaustive,
    serial_witness_from_site_orders,
    serializable_from_site_orders,
)
from .interpretation import AffineInterpretation
from .deadlock import find_deadlock, wait_for_graph
from .drivers import RandomDriver, ReplayDriver, RoundRobinDriver
from .engine import (
    SimulationEngine,
    SimulationResult,
    estimate_violation_rate,
    run_once,
)
from .history import Event, ExecutionHistory
from .lockmanager import SiteLockManager

__all__ = [
    "AffineInterpretation",
    "DeadlockReport",
    "Event",
    "ExecutionHistory",
    "RandomDriver",
    "ReplayDriver",
    "RoundRobinDriver",
    "SimulationEngine",
    "SimulationResult",
    "SiteLockManager",
    "conflicts_from_site_orders",
    "deadlock_possible_exhaustive",
    "estimate_violation_rate",
    "find_deadlock",
    "run_once",
    "serial_witness_from_site_orders",
    "serializable_from_site_orders",
    "wait_for_graph",
]
