"""Per-site lock managers.

Each site of the distributed database runs its own exclusive-lock table,
exactly as the paper's model prescribes (a lock bit per entity, §2).
The manager grants, denies and releases locks and keeps the FIFO wait
queues the deadlock detector inspects.  The queues are *binding*: a
free entity with a nonempty wait queue is only granted to the
longest-waiting requester, so a releaser that immediately re-requests
the same entity queues behind everyone it made wait instead of starving
them.  Given an :class:`~repro.obs.events.EventLog`, every grant, newly
blocked request and release is appended to the timeline with this
site's id.
"""

from __future__ import annotations

from ..errors import ScheduleError
from ..obs.events import EventLog


class SiteLockManager:
    """The lock table of one site (exclusive locks only)."""

    def __init__(self, site: int, *, event_log: EventLog | None = None) -> None:
        self.site = site
        self.event_log = event_log
        self._holder: dict[str, str] = {}
        self._waiting: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    def holder(self, entity: str) -> str | None:
        """Current lock holder of *entity*, or ``None``."""
        return self._holder.get(entity)

    def try_lock(self, entity: str, transaction: str) -> bool:
        """Attempt to set the lock bit; enqueue the requester on failure.

        A free entity with waiters is granted FIFO: only the
        longest-waiting requester may take it, everyone else (including
        a releaser immediately re-requesting) queues behind the line.
        """
        current = self._holder.get(entity)
        queue = self._waiting.get(entity)
        if current is None and queue and queue[0] != transaction:
            if transaction not in queue:
                queue.append(transaction)
                if self.event_log is not None:
                    self.event_log.emit(
                        "block",
                        transaction=transaction,
                        entity=entity,
                        site=self.site,
                        detail=f"behind FIFO queue ({queue[0]} waited longest)",
                    )
            return False
        if current is None:
            self._holder[entity] = transaction
            if queue and transaction in queue:
                queue.remove(transaction)
            if self.event_log is not None:
                self.event_log.emit(
                    "grant",
                    transaction=transaction,
                    entity=entity,
                    site=self.site,
                )
            return True
        if current == transaction:
            raise ScheduleError(
                f"{transaction} re-locks {entity!r} it already holds "
                "(transactions have one lock pair per entity)"
            )
        queue = self._waiting.setdefault(entity, [])
        if transaction not in queue:
            queue.append(transaction)
            if self.event_log is not None:
                self.event_log.emit(
                    "block",
                    transaction=transaction,
                    entity=entity,
                    site=self.site,
                    detail=f"held by {current}",
                )
        return False

    def unlock(self, entity: str, transaction: str) -> None:
        """Clear the lock bit; the holder must be *transaction*."""
        current = self._holder.get(entity)
        if current != transaction:
            raise ScheduleError(
                f"{transaction} unlocks {entity!r} held by {current!r}"
            )
        del self._holder[entity]
        if self.event_log is not None:
            self.event_log.emit(
                "release",
                transaction=transaction,
                entity=entity,
                site=self.site,
            )

    def held_entities(self) -> dict[str, str]:
        """Snapshot of the lock table: entity -> holding transaction."""
        return dict(self._holder)

    def waiters(self, entity: str) -> list[str]:
        """Transactions queued on *entity*."""
        return list(self._waiting.get(entity, ()))

    def next_waiter(self, entity: str) -> str | None:
        """The longest-waiting requester of *entity* (the only one
        :meth:`try_lock` may grant a free entity to), or ``None``."""
        queue = self._waiting.get(entity)
        return queue[0] if queue else None

    def withdraw(self, entity: str, transaction: str) -> None:
        """Remove *transaction* from the wait queue of *entity* only
        (lock-grant timeout support; abort uses :meth:`drop_waiter`)."""
        queue = self._waiting.get(entity)
        if queue and transaction in queue:
            queue.remove(transaction)

    def queued_entities(self, transaction: str) -> list[str]:
        """Entities whose wait queues contain *transaction*."""
        return [
            entity
            for entity, queue in self._waiting.items()
            if transaction in queue
        ]

    def drop_waiter(self, transaction: str) -> None:
        """Remove *transaction* from every wait queue (abort support)."""
        for queue in self._waiting.values():
            if transaction in queue:
                queue.remove(transaction)

    def held_by(self, transaction: str) -> list[str]:
        """All entities this site has locked for *transaction*."""
        return [
            entity
            for entity, holder in self._holder.items()
            if holder == transaction
        ]

    def release_all(self, transaction: str) -> list[str]:
        """Release every lock of *transaction* at this site (abort)."""
        released = self.held_by(transaction)
        for entity in released:
            del self._holder[entity]
        self.drop_waiter(transaction)
        return released
