"""The step-granular distributed execution engine.

Runs a :class:`~repro.core.schedule.TransactionSystem` on per-site lock
managers under a pluggable interleaving driver, producing an
:class:`~repro.sim.history.ExecutionHistory`.  The engine enforces
precisely the paper's execution model:

* a step becomes *ready* when all its predecessors in the transaction's
  partial order have executed;
* a ready lock step is *executable* iff its site's lock table can grant
  the lock (otherwise the request queues and may contribute to a
  wait-for cycle);
* update and unlock steps are always executable once ready.

An execution either completes (a legal schedule — the engine re-checks
this through :meth:`ExecutionHistory.as_schedule`) or deadlocks.  The
engine never reorders or aborts on its own; deadlock handling is
reported to the caller, because the paper's safety notion quantifies
over completed schedules only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.schedule import TransactionSystem
from ..core.step import Step
from ..errors import ScheduleError
from ..obs.events import EventLog
from .deadlock import find_deadlock
from .drivers import Candidate, RandomDriver
from .history import Event, ExecutionHistory
from .lockmanager import SiteLockManager


@dataclass
class SimulationResult:
    """Everything a run produced."""

    history: ExecutionHistory
    completed: bool
    deadlocked: list[str] = field(default_factory=list)
    serializable: bool | None = None
    event_log: EventLog | None = None

    @property
    def outcome(self) -> str:
        if not self.completed:
            return "deadlock"
        return "serializable" if self.serializable else "non-serializable"


class SimulationEngine:
    """One engine instance simulates one execution of one system.

    With *fifo_grants* the per-entity wait queues are binding: a freed
    lock may only be granted to the earliest-blocked requester, as in
    production lock managers.  Fairness narrows the reachable
    interleavings (and can introduce extra deadlocks when the queue
    head is itself blocked elsewhere) but never affects safety: a
    FIFO-reachable schedule is also reachable without FIFO.
    """

    def __init__(
        self,
        system: TransactionSystem,
        *,
        fifo_grants: bool = False,
        event_log: EventLog | None = None,
    ) -> None:
        """With an *event_log*, the run's lock grants/blocks/releases,
        step executions and deadlock detections are appended to it as a
        logically timestamped timeline (:mod:`repro.obs.events`)."""
        self.system = system
        self.database = system.database
        self.fifo_grants = fifo_grants
        self.event_log = event_log
        self.managers = {
            site: SiteLockManager(site, event_log=event_log)
            for site in range(1, self.database.sites + 1)
        }
        self._executed: dict[str, set[Step]] = {
            tx.name: set() for tx in system.transactions
        }
        self._queues: dict[str, list[str]] = {}
        self._blocked_seen: set[tuple[str, str]] = set()
        self._history = ExecutionHistory(system)
        self._clock = 0

    # ------------------------------------------------------------------
    def _ready_steps(self, name: str) -> list[Step]:
        tx = self.system[name]
        done = self._executed[name]
        ready = []
        for step in tx.steps:
            if step in done:
                continue
            poset = tx.poset()
            if all(
                other in done
                for other in tx.steps
                if poset.precedes(other, step)
            ):
                ready.append(step)
        return ready

    def _note_blocked(
        self, name: str, entity: str, holder: str | None
    ) -> None:
        """Timeline a *newly* blocked lock request (re-observations of
        the same wait on later scheduler rounds stay silent)."""
        if self.event_log is None or (name, entity) in self._blocked_seen:
            return
        self._blocked_seen.add((name, entity))
        self.event_log.emit(
            "block",
            transaction=name,
            entity=entity,
            site=self.database.site_of(entity),
            detail=f"held by {holder}" if holder else "behind FIFO queue",
        )

    def _executable(self) -> tuple[list[Candidate], list[tuple[str, str]]]:
        """(executable candidates, blocked lock requests)."""
        candidates: list[Candidate] = []
        blocked: list[tuple[str, str]] = []
        for tx in self.system.transactions:
            for step in self._ready_steps(tx.name):
                if step.is_lock:
                    site = self.database.site_of(step.entity)
                    holder = self.managers[site].holder(step.entity)
                    if holder is not None and holder != tx.name:
                        blocked.append((tx.name, step.entity))
                        self._note_blocked(tx.name, step.entity, holder)
                        if self.fifo_grants:
                            queue = self._queues.setdefault(
                                step.entity, []
                            )
                            if tx.name not in queue:
                                queue.append(tx.name)
                        continue
                    if self.fifo_grants:
                        queue = self._queues.get(step.entity, [])
                        if queue and queue[0] != tx.name:
                            # Free, but someone arrived first.
                            blocked.append((tx.name, step.entity))
                            self._note_blocked(tx.name, step.entity, None)
                            if tx.name not in queue:
                                queue.append(tx.name)
                            continue
                    candidates.append((tx.name, step))
                else:
                    candidates.append((tx.name, step))
        return candidates, blocked

    def _execute(self, name: str, step: Step) -> None:
        site = self.database.site_of(step.entity)
        manager = self.managers[site]
        if step.is_lock:
            granted = manager.try_lock(step.entity, name)
            if not granted:
                raise ScheduleError(
                    f"engine chose blocked lock {step}[{name}]"
                )
            self._blocked_seen.discard((name, step.entity))
            queue = self._queues.get(step.entity)
            if queue and name in queue:
                queue.remove(name)
        elif step.is_unlock:
            manager.unlock(step.entity, name)
        else:
            holder = manager.holder(step.entity)
            if holder != name:
                raise ScheduleError(
                    f"{name} updates {step.entity!r} without holding its "
                    f"lock (holder: {holder!r})"
                )
            if self.event_log is not None:
                self.event_log.emit(
                    "step",
                    transaction=name,
                    entity=step.entity,
                    site=site,
                    detail=str(step),
                )
        self._executed[name].add(step)
        self._history.append(Event(self._clock, site, name, step))
        self._clock += 1

    # ------------------------------------------------------------------
    def run(self, driver=None, *, max_steps: int | None = None) -> SimulationResult:
        """Run to completion or deadlock.

        *driver* defaults to a seeded :class:`RandomDriver`; *max_steps*
        guards against misbehaving custom drivers.
        """
        if driver is None:
            driver = RandomDriver(0)
        budget = max_steps if max_steps is not None else (
            self.system.total_steps() + 1
        )
        for _ in range(budget):
            candidates, blocked = self._executable()
            if not candidates:
                if self._history.is_complete():
                    break
                deadlock = find_deadlock(self.managers.values(), blocked)
                stuck = deadlock or sorted({name for name, _ in blocked})
                if self.event_log is not None:
                    self.event_log.emit(
                        "deadlock", detail=" -> ".join(stuck)
                    )
                return SimulationResult(
                    history=self._history,
                    completed=False,
                    deadlocked=stuck,
                    event_log=self.event_log,
                )
            name, step = driver(candidates)
            self._execute(name, step)
        if not self._history.is_complete():
            return SimulationResult(
                history=self._history,
                completed=False,
                deadlocked=[],
                event_log=self.event_log,
            )
        # Self-check: a completed run must be a legal paper schedule.
        self._history.as_schedule()
        serializable = self._history.is_serializable()
        if self.event_log is not None:
            self.event_log.emit(
                "complete",
                detail=(
                    "serializable" if serializable else "non-serializable"
                ),
            )
        return SimulationResult(
            history=self._history,
            completed=True,
            serializable=serializable,
            event_log=self.event_log,
        )


def run_once(
    system: TransactionSystem,
    driver=None,
    *,
    max_steps: int | None = None,
    fifo_grants: bool = False,
    event_log: EventLog | None = None,
) -> SimulationResult:
    """Convenience: fresh engine, one run."""
    return SimulationEngine(
        system, fifo_grants=fifo_grants, event_log=event_log
    ).run(driver, max_steps=max_steps)


def estimate_violation_rate(
    system: TransactionSystem,
    *,
    runs: int,
    seed: int = 0,
    fifo_grants: bool = False,
) -> dict[str, float]:
    """Monte-Carlo execution statistics under random interleaving.

    Returns fractions of runs ending serializable / non-serializable /
    deadlocked — the simulator-side view of (un)safety used by the
    benchmark harness (experiment E11).
    """
    import random

    master = random.Random(seed)
    outcomes = {"serializable": 0, "non-serializable": 0, "deadlock": 0}
    for _ in range(runs):
        result = run_once(
            system,
            RandomDriver(master.randrange(2**63)),
            fifo_grants=fifo_grants,
        )
        outcomes[result.outcome] += 1
    return {key: value / runs for key, value in outcomes.items()}
