"""The step-granular distributed execution engine.

Runs a :class:`~repro.core.schedule.TransactionSystem` on per-site lock
managers under a pluggable interleaving driver, producing an
:class:`~repro.sim.history.ExecutionHistory`.  The engine enforces
precisely the paper's execution model:

* a step becomes *ready* when all its predecessors in the transaction's
  partial order have executed;
* a ready lock step is *executable* iff its site's lock table can grant
  the lock (otherwise the request queues and may contribute to a
  wait-for cycle);
* update and unlock steps are always executable once ready.

Without faults an execution either completes (a legal schedule — the
engine re-checks this through :meth:`ExecutionHistory.as_schedule`) or
deadlocks, exactly as before: the engine never reorders or aborts on
its own, because the paper's safety notion quantifies over completed
schedules only.

Since PR 3 the engine can additionally consume a
:class:`~repro.faults.FaultPlan` (site crashes with freeze/release
lock-table semantics, lock-grant delays, transaction crash-at-step) and
a deadlock *resolution* policy (:mod:`repro.faults.policies`).  A
victim — of a crash or of a resolved deadlock — is rolled back
(locks released everywhere, executed steps erased from the history)
and requeued after a seeded exponential backoff with jitter, at most
``max_retries`` times.  A completed run is still re-validated as a
legal schedule: rollback removes the victim's events, so what remains
(plus the successful re-execution) is a schedule of the full system.
Incomplete runs now distinguish their cause —
:attr:`SimulationResult.outcome` reports ``"deadlock"``,
``"crashed"``, ``"retry-exhausted"`` or ``"stalled"`` instead of
folding everything into ``"deadlock"``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.schedule import TransactionSystem
from ..core.step import Step
from ..errors import ScheduleError
from ..obs import metrics
from ..obs.events import EventLog
from .deadlock import find_deadlock
from .drivers import Candidate, RandomDriver
from .history import Event, ExecutionHistory
from .lockmanager import SiteLockManager

#: Logical-step buckets for fault-recovery latency (rollback to the
#: victim's eventual completion).
RECOVERY_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0)


def _faults_counter() -> metrics.Counter:
    return metrics.REGISTRY.counter(
        "repro_faults_injected_total",
        "fault-plan entries fired by the simulator, by kind",
    )


def _resolved_counter() -> metrics.Counter:
    return metrics.REGISTRY.counter(
        "repro_deadlocks_resolved_total",
        "wait-for cycles broken by a resolution policy, by policy",
    )


def _retries_counter() -> metrics.Counter:
    return metrics.REGISTRY.counter(
        "repro_retries_total",
        "aborted-and-requeued work units, by scope",
    )


def _recovery_histogram() -> metrics.Histogram:
    return metrics.REGISTRY.histogram(
        "repro_recovery_latency_steps",
        "logical steps from a rollback to the victim's completion",
        buckets=RECOVERY_BUCKETS,
    )


@dataclass
class SimulationResult:
    """Everything a run produced."""

    history: ExecutionHistory
    completed: bool
    deadlocked: list[str] = field(default_factory=list)
    serializable: bool | None = None
    event_log: EventLog | None = None
    #: Transactions stuck behind a crashed site when the run ended.
    crashed: list[str] = field(default_factory=list)
    #: Transactions whose retry budget ran out (ends the run).
    retry_exhausted: list[str] = field(default_factory=list)
    #: Abort-and-requeue counts per transaction.
    retries: dict[str, int] = field(default_factory=dict)
    faults_injected: int = 0
    deadlocks_resolved: int = 0
    #: Logical steps from each rollback to that victim's completion.
    recovery_latencies: list[int] = field(default_factory=list)

    @property
    def total_retries(self) -> int:
        """All abort-and-requeue events of the run."""
        return sum(self.retries.values())

    @property
    def outcome(self) -> str:
        """``serializable`` / ``non-serializable`` for completed runs;
        incomplete runs report their cause: ``retry-exhausted`` (a
        victim ran out of retries), ``deadlock`` (unresolved wait-for
        cycle), ``crashed`` (stuck behind a crashed site), or
        ``stalled`` (step budget exhausted)."""
        if self.completed:
            return "serializable" if self.serializable else "non-serializable"
        if self.retry_exhausted:
            return "retry-exhausted"
        if self.deadlocked:
            return "deadlock"
        if self.crashed:
            return "crashed"
        return "stalled"


class SimulationEngine:
    """One engine instance simulates one execution of one system.

    With *fifo_grants* the per-entity wait queues are binding: a freed
    lock may only be granted to the earliest-blocked requester, as in
    production lock managers.  Fairness narrows the reachable
    interleavings (and can introduce extra deadlocks when the queue
    head is itself blocked elsewhere) but never affects safety: a
    FIFO-reachable schedule is also reachable without FIFO.

    *fault_plan* and *deadlock_policy* switch on the fault-injection
    and recovery layer (:mod:`repro.faults`); with both unset the
    engine behaves exactly as it always has.  *max_retries* bounds the
    abort-and-requeue budget per transaction; backoff after an abort is
    ``backoff_base * 2**attempt`` logical ticks plus a jitter drawn
    from ``random.Random(fault_seed)``.
    """

    def __init__(
        self,
        system: TransactionSystem,
        *,
        fifo_grants: bool = False,
        event_log: EventLog | None = None,
        fault_plan=None,
        deadlock_policy: str | None = None,
        max_retries: int = 3,
        backoff_base: int = 1,
        backoff_jitter: int = 2,
        fault_seed: int = 0,
    ) -> None:
        """With an *event_log*, the run's lock grants/blocks/releases,
        step executions, fault injections and deadlock detections are
        appended to it as a logically timestamped timeline
        (:mod:`repro.obs.events`)."""
        self.system = system
        self.database = system.database
        self.fifo_grants = fifo_grants
        self.event_log = event_log
        self.managers = {
            site: SiteLockManager(site, event_log=event_log)
            for site in range(1, self.database.sites + 1)
        }
        self._executed: dict[str, set[Step]] = {
            tx.name: set() for tx in system.transactions
        }
        self._queues: dict[str, list[str]] = {}
        self._blocked_seen: set[tuple[str, str]] = set()
        self._history = ExecutionHistory(system)
        self._clock = 0

        # Fault-injection and recovery state (inert unless configured).
        from ..faults.injector import FaultInjector
        from ..faults.policies import validate_policy

        self.deadlock_policy = validate_policy(deadlock_policy)
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_jitter = backoff_jitter
        if fault_plan is not None:
            fault_plan.validate_against(system)
            self._injector = FaultInjector(fault_plan)
        else:
            self._injector = None
        self._faults_active = (
            self._injector is not None or self.deadlock_policy is not None
        )
        self._fault_rng = random.Random(fault_seed)
        # Admission-order ages for the resolution policies, stable
        # across restarts so "youngest" cannot be gamed by dying.
        self._ages = {
            tx.name: index for index, tx in enumerate(system.transactions)
        }
        self._retries: dict[str, int] = {}
        self._down_until: dict[str, int] = {}
        self._abort_clock: dict[str, int] = {}
        self._recovery_latencies: list[int] = []
        self._deadlocks_resolved = 0
        self._crash_stalled: set[str] = set()

    # ------------------------------------------------------------------
    def _ready_steps(self, name: str) -> list[Step]:
        tx = self.system[name]
        done = self._executed[name]
        ready = []
        for step in tx.steps:
            if step in done:
                continue
            poset = tx.poset()
            if all(
                other in done
                for other in tx.steps
                if poset.precedes(other, step)
            ):
                ready.append(step)
        return ready

    def _note_blocked(
        self, name: str, entity: str, holder: str | None
    ) -> None:
        """Timeline a *newly* blocked lock request (re-observations of
        the same wait on later scheduler rounds stay silent)."""
        if self.event_log is None or (name, entity) in self._blocked_seen:
            return
        self._blocked_seen.add((name, entity))
        self.event_log.emit(
            "block",
            transaction=name,
            entity=entity,
            site=self.database.site_of(entity),
            detail=f"held by {holder}" if holder else "behind FIFO queue",
        )

    def _executable(self) -> tuple[list[Candidate], list[tuple[str, str]]]:
        """(executable candidates, blocked lock requests)."""
        candidates: list[Candidate] = []
        blocked: list[tuple[str, str]] = []
        self._crash_stalled = set()
        for tx in self.system.transactions:
            if self._faults_active:
                until = self._down_until.get(tx.name)
                if until is not None:
                    if until > self._clock:
                        continue  # still backing off after an abort
                    del self._down_until[tx.name]
                    if self.event_log is not None:
                        self.event_log.emit(
                            "retry",
                            transaction=tx.name,
                            detail=f"attempt {self._retries[tx.name] + 1}",
                        )
            for step in self._ready_steps(tx.name):
                site = self.database.site_of(step.entity)
                if self._injector is not None and self._injector.site_down(
                    site
                ):
                    self._crash_stalled.add(tx.name)
                    continue
                if step.is_lock:
                    if (
                        self._injector is not None
                        and self._injector.grant_delayed(
                            step.entity, site, self._clock
                        )
                    ):
                        continue  # grant withheld; retried next round
                    holder = self.managers[site].holder(step.entity)
                    if holder is not None and holder != tx.name:
                        blocked.append((tx.name, step.entity))
                        self._note_blocked(tx.name, step.entity, holder)
                        if self.fifo_grants:
                            queue = self._queues.setdefault(
                                step.entity, []
                            )
                            if tx.name not in queue:
                                queue.append(tx.name)
                        continue
                    if self.fifo_grants:
                        queue = self._queues.get(step.entity, [])
                        if queue and queue[0] != tx.name:
                            # Free, but someone arrived first.
                            blocked.append((tx.name, step.entity))
                            self._note_blocked(tx.name, step.entity, None)
                            if tx.name not in queue:
                                queue.append(tx.name)
                            continue
                    candidates.append((tx.name, step))
                else:
                    candidates.append((tx.name, step))
        return candidates, blocked

    def _execute(self, name: str, step: Step) -> None:
        site = self.database.site_of(step.entity)
        manager = self.managers[site]
        if step.is_lock:
            granted = manager.try_lock(step.entity, name)
            if not granted:
                raise ScheduleError(
                    f"engine chose blocked lock {step}[{name}]"
                )
            self._blocked_seen.discard((name, step.entity))
            queue = self._queues.get(step.entity)
            if queue and name in queue:
                queue.remove(name)
        elif step.is_unlock:
            manager.unlock(step.entity, name)
        else:
            holder = manager.holder(step.entity)
            if holder != name:
                raise ScheduleError(
                    f"{name} updates {step.entity!r} without holding its "
                    f"lock (holder: {holder!r})"
                )
            if self.event_log is not None:
                self.event_log.emit(
                    "step",
                    transaction=name,
                    entity=step.entity,
                    site=site,
                    detail=str(step),
                )
        self._executed[name].add(step)
        self._history.append(Event(self._clock, site, name, step))
        self._clock += 1
        if (
            name in self._abort_clock
            and len(self._executed[name]) == len(self.system[name])
        ):
            latency = self._clock - self._abort_clock.pop(name)
            self._recovery_latencies.append(latency)
            _recovery_histogram().observe(latency)

    # ------------------------------------------------------------------
    # Fault injection and recovery
    # ------------------------------------------------------------------
    def _apply_faults(self) -> str | None:
        """Fire due site crashes/recoveries.  A ``release``-semantics
        crash aborts every lock holder at the site; returns the name of
        a holder whose retry budget ran out, or ``None``."""
        fired, recovered = self._injector.advance(self._clock)
        for crash in recovered:
            if self.event_log is not None:
                self.event_log.emit(
                    "recover", site=crash.site, detail=f"t={self._clock}"
                )
        for crash in fired:
            _faults_counter().labels(kind="site_crash").inc()
            if self.event_log is not None:
                self.event_log.emit(
                    "crash", site=crash.site, detail=crash.semantics
                )
            if crash.semantics == "release":
                holders = sorted(
                    set(self.managers[crash.site].held_entities().values())
                )
                for victim in holders:
                    if not self._abort_and_requeue(
                        victim, f"lost locks: site {crash.site} crashed"
                    ):
                        return victim
        return None

    def _abort_and_requeue(self, name: str, reason: str) -> bool:
        """Roll *name* back — release its locks everywhere, erase its
        executed steps from the history — and requeue it after an
        exponential backoff with jitter.  Returns ``False`` (without
        rolling back) when its retry budget is exhausted."""
        attempt = self._retries.get(name, 0)
        if attempt >= self.max_retries:
            return False
        for manager in self.managers.values():
            manager.release_all(name)
        self._executed[name].clear()
        self._history.events = [
            event for event in self._history.events
            if event.transaction != name
        ]
        for queue in self._queues.values():
            if name in queue:
                queue.remove(name)
        self._blocked_seen = {
            entry for entry in self._blocked_seen if entry[0] != name
        }
        self._retries[name] = attempt + 1
        backoff = self.backoff_base * (2**attempt)
        if self.backoff_jitter > 0:
            backoff += self._fault_rng.randrange(self.backoff_jitter + 1)
        self._down_until[name] = self._clock + max(1, backoff)
        self._abort_clock[name] = self._clock
        _retries_counter().labels(scope="sim").inc()
        if self.event_log is not None:
            self.event_log.emit(
                "abort",
                transaction=name,
                detail=f"{reason}; backoff {max(1, backoff)}",
            )
        return True

    def _next_wakeup(self) -> int | None:
        """The earliest strictly-future logical time anything changes
        while no step is executable: a backoff expires or the fault
        plan fires/recovers something."""
        times = [
            until for until in self._down_until.values()
            if until > self._clock
        ]
        if self._injector is not None:
            wake = self._injector.next_wakeup(self._clock)
            if wake is not None:
                times.append(wake)
        return min(times, default=None)

    def _result(self, **overrides) -> SimulationResult:
        fields = dict(
            history=self._history,
            completed=False,
            event_log=self.event_log,
            crashed=sorted(self._crash_stalled),
            retries=dict(self._retries),
            faults_injected=(
                self._injector.injected if self._injector is not None else 0
            ),
            deadlocks_resolved=self._deadlocks_resolved,
            recovery_latencies=list(self._recovery_latencies),
        )
        fields.update(overrides)
        return SimulationResult(**fields)

    # ------------------------------------------------------------------
    def run(self, driver=None, *, max_steps: int | None = None) -> SimulationResult:
        """Run to completion, deadlock, or a fault-layer terminal state.

        *driver* defaults to a seeded :class:`RandomDriver`; *max_steps*
        guards against misbehaving custom drivers.  With faults or a
        resolution policy active the default step budget also covers
        every transaction re-executing up to *max_retries* times, and a
        separate idle budget bounds the clock jumps a fully stalled
        engine may take — a run can therefore never spin forever.
        """
        if driver is None:
            driver = RandomDriver(0)
        budget = max_steps if max_steps is not None else (
            self.system.total_steps() + 1
        )
        idle_budget = 0
        if self._faults_active and max_steps is None:
            # Aborted work re-executes: worst case every transaction
            # retries to exhaustion.
            budget += self.max_retries * self.system.total_steps()
        if self._faults_active:
            retry_slots = self.max_retries * len(self.system.transactions)
            plan_slots = (
                2 * len(self._injector.plan) if self._injector is not None else 0
            )
            # Every idle tick jumps the clock to a strictly later
            # wakeup, and wakeups only come from finitely many plan
            # entries and bounded retries.
            idle_budget = 16 + plan_slots + retry_slots
        executed = 0
        idle = 0
        while executed < budget and idle <= idle_budget:
            if self._injector is not None:
                exhausted = self._apply_faults()
                if exhausted is not None:
                    return self._result(retry_exhausted=[exhausted])
            candidates, blocked = self._executable()
            if not candidates:
                if self._history.is_complete():
                    break
                deadlock = find_deadlock(self.managers.values(), blocked)
                if deadlock is not None and self.deadlock_policy is not None:
                    victim = self._resolve_deadlock(deadlock)
                    if victim is None:
                        continue
                    return self._result(retry_exhausted=[victim])
                if deadlock is not None or (
                    blocked and not self._faults_active
                ):
                    stuck = deadlock or sorted(
                        {name for name, _ in blocked}
                    )
                    if self.event_log is not None:
                        self.event_log.emit(
                            "deadlock", detail=" -> ".join(stuck)
                        )
                    return self._result(deadlocked=stuck)
                wake = self._next_wakeup()
                if wake is not None:
                    self._clock = wake
                    idle += 1
                    continue
                # Nothing executable, no wait-for cycle, nothing
                # scheduled to change: stuck behind a dead site (or a
                # driver starved the run).
                return self._result(
                    deadlocked=sorted({name for name, _ in blocked})
                    if blocked and not self._crash_stalled
                    else []
                )
            name, step = driver(candidates)
            self._execute(name, step)
            executed += 1
            if self._injector is not None:
                crash = self._injector.take_transaction_crash(
                    name, len(self._executed[name])
                )
                if crash is not None:
                    _faults_counter().labels(kind="transaction_crash").inc()
                    if self.event_log is not None:
                        self.event_log.emit(
                            "crash",
                            transaction=name,
                            detail=f"after step {crash.after_steps}",
                        )
                    if not self._abort_and_requeue(
                        name, f"crashed after step {crash.after_steps}"
                    ):
                        return self._result(retry_exhausted=[name])
        if not self._history.is_complete():
            self._crash_stalled = set()
            return self._result()
        # Self-check: a completed run must be a legal paper schedule.
        self._history.as_schedule()
        serializable = self._history.is_serializable()
        if self.event_log is not None:
            self.event_log.emit(
                "complete",
                detail=(
                    "serializable" if serializable else "non-serializable"
                ),
            )
        return self._result(
            completed=True, serializable=serializable, crashed=[]
        )

    def _resolve_deadlock(self, cycle: list[str]) -> str | None:
        """Break *cycle* under the configured policy: abort and requeue
        the victim.  Returns the victim's name when its retry budget is
        exhausted (terminal), else ``None``."""
        from ..faults.policies import choose_victim

        victim = choose_victim(
            self.deadlock_policy, cycle, self._ages, self._fault_rng
        )
        if self.event_log is not None:
            self.event_log.emit(
                "deadlock",
                detail=(
                    f"{' -> '.join(cycle)}; {self.deadlock_policy} "
                    f"aborts {victim}"
                ),
            )
        if not self._abort_and_requeue(
            victim, f"deadlock victim ({self.deadlock_policy})"
        ):
            return victim
        self._deadlocks_resolved += 1
        _resolved_counter().labels(policy=self.deadlock_policy).inc()
        return None


def run_once(
    system: TransactionSystem,
    driver=None,
    *,
    max_steps: int | None = None,
    fifo_grants: bool = False,
    event_log: EventLog | None = None,
    fault_plan=None,
    deadlock_policy: str | None = None,
    max_retries: int = 3,
    fault_seed: int = 0,
) -> SimulationResult:
    """Convenience: fresh engine, one run."""
    return SimulationEngine(
        system,
        fifo_grants=fifo_grants,
        event_log=event_log,
        fault_plan=fault_plan,
        deadlock_policy=deadlock_policy,
        max_retries=max_retries,
        fault_seed=fault_seed,
    ).run(driver, max_steps=max_steps)


def estimate_violation_rate(
    system: TransactionSystem,
    *,
    runs: int,
    seed: int = 0,
    fifo_grants: bool = False,
    fault_plan=None,
    deadlock_policy: str | None = None,
    max_retries: int = 3,
) -> dict[str, float]:
    """Monte-Carlo execution statistics under random interleaving.

    Returns fractions of runs per outcome — always including
    serializable / non-serializable / deadlock, plus any fault-layer
    outcomes that occurred — the simulator-side view of (un)safety
    used by the benchmark harness (experiment E11).
    """
    master = random.Random(seed)
    outcomes = {"serializable": 0, "non-serializable": 0, "deadlock": 0}
    for index in range(runs):
        result = run_once(
            system,
            RandomDriver(master.randrange(2**63)),
            fifo_grants=fifo_grants,
            fault_plan=fault_plan,
            deadlock_policy=deadlock_policy,
            max_retries=max_retries,
            fault_seed=seed + index,
        )
        outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
    return {key: value / runs for key, value in outcomes.items()}
