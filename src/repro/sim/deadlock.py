"""Distributed deadlock detection over the union wait-for graph.

The paper closes by noting that *distributed deadlocks* "appear to be
subtle, and to require a different methodology" — they are out of the
paper's scope, but the simulator must still terminate, so it runs the
classical global wait-for-graph detector: transaction ``Ti`` waits for
``Tj`` iff some lock request of ``Ti`` is queued behind a lock ``Tj``
currently holds (at any site).  A cycle means deadlock.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graphs import DiGraph, find_cycle
from .lockmanager import SiteLockManager


def wait_for_graph(
    managers: Iterable[SiteLockManager],
    blocked_requests: Iterable[tuple[str, str]],
) -> DiGraph:
    """Build the union wait-for graph.

    *blocked_requests* is ``(transaction, entity)`` for every currently
    blocked lock request; holders come from the per-site lock tables.
    """
    holder: dict[str, str] = {}
    for manager in managers:
        holder.update(manager.held_entities())
    graph = DiGraph()
    for waiter, entity in blocked_requests:
        owner = holder.get(entity)
        graph.add_node(waiter)
        if owner is not None and owner != waiter:
            graph.add_arc(waiter, owner)
    return graph


def find_deadlock(
    managers: Iterable[SiteLockManager],
    blocked_requests: Iterable[tuple[str, str]],
) -> list[str] | None:
    """Return the transactions on one wait-for cycle, or ``None``."""
    cycle = find_cycle(wait_for_graph(managers, blocked_requests))
    if cycle is None:
        return None
    return cycle[:-1]
