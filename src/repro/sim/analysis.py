"""Exhaustive *distributed* deadlock analysis.

The paper closes with: "Distributed deadlocks (a problem left open
here) appear to be subtle, and to require a different methodology."
This module supplies the brute-force methodology the 1982 authors could
not afford: a reachability search over the execution-state space of the
lock-manager engine, deciding whether **any** interleaving can reach a
state where some transactions are blocked forever.

A state is the set of executed steps (lock ownership is derivable).
From each state the executable steps are exactly the engine's; a state
with no executable step and work remaining is a *stuck* state — in this
engine's semantics always a lock-wait cycle or a wait chain into one.
Exponential in system size, exact for the test- and benchmark-scale
systems; the geometric analysis (:meth:`GeometricPicture.
deadlock_possible`) covers the centralized two-transaction special case
in polynomial time, and the two are cross-validated.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from ..core.schedule import ScheduledStep, TransactionSystem
from ..core.step import Step
from ..errors import ScheduleError
from ..graphs import DiGraph, is_acyclic, topological_sort


@dataclass
class DeadlockReport:
    """Outcome of the exhaustive analysis."""

    possible: bool
    prefix: list[ScheduledStep] | None = None
    blocked: list[tuple[str, str]] | None = None
    states_explored: int = 0

    def describe(self) -> str:
        if not self.possible:
            return (
                f"deadlock-free: {self.states_explored} reachable states, "
                "all can progress"
            )
        waits = ", ".join(
            f"{name} waits for {entity!r}" for name, entity in self.blocked
        )
        steps = " ".join(str(item) for item in self.prefix)
        return (
            f"deadlock reachable after: {steps}\n  stuck: {waits}"
        )


def conflicts_from_site_orders(
    site_orders: Mapping[str, Sequence[str]],
) -> DiGraph:
    """The transaction conflict graph implied by per-entity update
    orders.

    *site_orders* maps each entity to the committed update sequence its
    owning site observed (transaction names, in site-local order).
    Every entity is stored at exactly one site, so these per-entity
    orders are the ground truth of the distributed execution — the
    cluster runtime (:mod:`repro.cluster`) collects them from its
    :class:`~repro.cluster.siteserver.SiteServer` lock tables and the
    simulator can produce them from an
    :class:`~repro.sim.history.ExecutionHistory`.
    """
    names: list[str] = []
    seen: set[str] = set()
    for order in site_orders.values():
        for name in order:
            if name not in seen:
                seen.add(name)
                names.append(name)
    graph = DiGraph(sorted(names))
    for order in site_orders.values():
        if len(set(order)) == len(order):
            # Duplicate-free order: the consecutive-pair chain is the
            # transitive reduction of the all-pairs closure — identical
            # reachability, so identical cycles and topological orders,
            # at O(n) arcs instead of O(n^2).
            for tail, head in zip(order, order[1:]):
                graph.add_arc(tail, head)
            continue
        previous: list[str] = []
        for name in order:
            for other in previous:
                if other != name:
                    graph.add_arc(other, name)
            if name not in previous:
                previous.append(name)
    return graph


def serializable_from_site_orders(
    site_orders: Mapping[str, Sequence[str]],
) -> bool:
    """Conflict-serializability of a committed distributed history
    given as per-entity update orders (acyclic conflict graph)."""
    return is_acyclic(conflicts_from_site_orders(site_orders))


def serial_witness_from_site_orders(
    site_orders: Mapping[str, Sequence[str]],
) -> list[str] | None:
    """A serial order witnessing serializability, or ``None``."""
    graph = conflicts_from_site_orders(site_orders)
    if not is_acyclic(graph):
        return None
    return topological_sort(graph)


def _prepare(system: TransactionSystem):
    ids: dict[ScheduledStep, int] = {}
    for tx in system.transactions:
        for step in tx.steps:
            ids[ScheduledStep(tx.name, step)] = len(ids)
    predecessor_masks: dict[ScheduledStep, int] = {}
    for tx in system.transactions:
        poset = tx.poset()
        for step in tx.steps:
            mask = 0
            for other in tx.steps:
                if poset.precedes(other, step):
                    mask |= 1 << ids[ScheduledStep(tx.name, other)]
            predecessor_masks[ScheduledStep(tx.name, step)] = mask
    return ids, predecessor_masks


def deadlock_possible_exhaustive(
    system: TransactionSystem, state_budget: int = 500_000
) -> DeadlockReport:
    """Search every reachable execution state for a stuck one.

    Raises :class:`ScheduleError` when *state_budget* is exceeded —
    the caller should fall back to sampling.
    """
    ids, predecessor_masks = _prepare(system)
    items = list(ids)
    total_mask = (1 << len(items)) - 1

    def holders(executed: int) -> dict[str, str]:
        owned: dict[str, str] = {}
        for item in items:
            if not executed >> ids[item] & 1:
                continue
            if item.step.is_lock:
                tx = system[item.transaction]
                unlock = tx.unlock_step(item.step.entity)
                unlock_item = ScheduledStep(item.transaction, unlock)
                if not executed >> ids[unlock_item] & 1:
                    owned[item.step.entity] = item.transaction
        return owned

    def moves(executed: int) -> tuple[list[ScheduledStep], list[tuple[str, str]]]:
        owned = holders(executed)
        ready: list[ScheduledStep] = []
        blocked: list[tuple[str, str]] = []
        for item in items:
            if executed >> ids[item] & 1:
                continue
            if predecessor_masks[item] & ~executed:
                continue
            if item.step.is_lock:
                holder = owned.get(item.step.entity)
                if holder is not None and holder != item.transaction:
                    blocked.append((item.transaction, item.step.entity))
                    continue
            ready.append(item)
        return ready, blocked

    seen = {0}
    parent: dict[int, tuple[int, ScheduledStep]] = {}
    frontier = [0]
    explored = 0
    while frontier:
        state = frontier.pop()
        explored += 1
        if explored > state_budget:
            raise ScheduleError(
                f"deadlock search exceeded {state_budget} states"
            )
        ready, blocked = moves(state)
        if not ready and state != total_mask:
            prefix: list[ScheduledStep] = []
            cursor = state
            while cursor:
                previous, item = parent[cursor]
                prefix.append(item)
                cursor = previous
            prefix.reverse()
            return DeadlockReport(
                possible=True,
                prefix=prefix,
                blocked=sorted(blocked),
                states_explored=explored,
            )
        for item in ready:
            nxt = state | (1 << ids[item])
            if nxt not in seen:
                seen.add(nxt)
                parent[nxt] = (state, item)
                frontier.append(nxt)
    return DeadlockReport(possible=False, states_explored=explored)
