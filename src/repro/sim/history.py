"""Execution histories produced by the simulator.

A history is the simulator-side analogue of the paper's *schedule*: the
total order in which steps actually executed, annotated with the site
and logical time of each event.  Serializability is checked with the
same conflict-graph machinery the static analyzers use
(:func:`repro.core.schedule.conflict_graph`), so simulator outcomes and
static verdicts are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.schedule import Schedule, ScheduledStep, TransactionSystem, conflict_graph
from ..core.step import Step
from ..graphs import is_acyclic, topological_sort


@dataclass(frozen=True)
class Event:
    """One executed step: when, where, who, what."""

    time: int
    site: int
    transaction: str
    step: Step

    def __str__(self) -> str:
        return f"t={self.time} s{self.site} {self.step}[{self.transaction}]"


@dataclass
class ExecutionHistory:
    """The ordered record of an execution."""

    system: TransactionSystem
    events: list[Event] = field(default_factory=list)

    def append(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def steps(self) -> list[tuple[str, Step]]:
        return [(event.transaction, event.step) for event in self.events]

    def is_complete(self) -> bool:
        """Did every step of every transaction execute?"""
        return len(self.events) == self.system.total_steps()

    def is_serializable(self) -> bool:
        """Conflict-serializability of the (possibly partial) history."""
        return is_acyclic(conflict_graph(self.steps(), self.system.names))

    def equivalent_serial_order(self) -> list[str] | None:
        """A witnessing serial order, or ``None`` if non-serializable."""
        graph = conflict_graph(self.steps(), self.system.names)
        if not is_acyclic(graph):
            return None
        return topological_sort(graph)

    def as_schedule(self) -> Schedule:
        """Re-validate the completed history as a paper-style schedule
        (raises :class:`~repro.errors.ScheduleError` if the simulator
        ever produced an illegal interleaving — a strong self-check)."""
        return Schedule(
            self.system,
            [ScheduledStep(event.transaction, event.step) for event in self.events],
        )

    def per_site(self) -> dict[int, list[Event]]:
        """Events grouped by site, in execution order."""
        grouped: dict[int, list[Event]] = {}
        for event in self.events:
            grouped.setdefault(event.site, []).append(event)
        return grouped

    def describe(self) -> str:
        lines = [f"history: {len(self.events)} events"]
        lines.extend(f"  {event}" for event in self.events)
        return "\n".join(lines)
