"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------

``analyze FILE``
    Parse a system description (:mod:`repro.dsl`) and decide safety;
    ``--certificate`` prints the full unsafeness certificate,
    ``--exhaustive`` cross-checks against the definitional decider,
    ``--dot`` emits ``D(T1, T2)`` in Graphviz DOT.

``simulate FILE``
    Monte-Carlo execution on the distributed lock-manager simulator;
    ``--faults PLAN.json`` injects a seeded fault plan
    (:mod:`repro.faults`) and ``--deadlock-policy`` /
    ``--max-retries`` turn detected deadlocks into victim rollback and
    bounded retry instead of terminal outcomes.

``chaos [FILE]``
    Sweep many driver seeds under one fault plan and aggregate the
    recovery statistics (completion rate, retries per run, p95
    rollback-to-completion latency).  The system file may be embedded
    in the plan (``"system": "path.sys"``).

``plane FILE``
    Render the coordinated plane of a totally ordered pair (Fig. 2
    style), with the separating curve when one exists.

``reduce FORMULA``
    Theorem 3 end-to-end: compile a CNF formula to a transaction pair
    and decide its safety (⟺ unsatisfiability).

``figures [NAME]``
    Print the paper's figure systems in the DSL, with their verdicts.

``vet FILE...``
    Batch-vet many system files through one admission registry
    (:mod:`repro.service`): every transaction is admitted incrementally,
    with fingerprint-cached pair verdicts and optional parallel vetting
    (``--workers N``).

``serve``
    Long-running line-oriented admission loop on stdin/stdout:
    ``ADMIT <dsl with ';' for newlines>``, ``EVICT <name>``, ``STATS``,
    ``METRICS``, ``QUIT``.

``cluster run|serve|bench|status``
    The networked runtime (:mod:`repro.cluster`): ``run`` boots an
    in-process multi-site cluster (``--transport memory`` for
    deterministic queues, ``tcp`` for real sockets), executes
    ``--rounds`` instances of a system and audits every committed
    history for serializability; ``serve`` runs one TCP site server in
    the foreground; ``bench`` compares simulator vs memory vs TCP
    throughput; ``status`` probes live sites (``--peer
    ADDR=HOST:PORT``), prints each lock table / wait queue / replica
    lease state and stitches the per-site wait-for edges into the
    global graph, flagging deadlock cycles (exit 1) and unreachable
    sites (exit 2).

``postmortem DIR``
    Render a post-mortem bundle (:mod:`repro.obs.insight`) written by
    ``cluster run --postmortem DIR`` (or ``REPRO_POSTMORTEM``) when a
    run ended non-serializable, with a partial commit, or with an
    incomplete audit: run summary, contention ranking, the
    flight-recorder tail and any bundled trace files.

``arena``
    Sweep a policy × workload × fault-plan matrix (:mod:`repro.arena`):
    each ``--workload SPEC.json`` is a seeded traffic model
    (:mod:`repro.workloads.traffic` — key skew, transaction mix,
    open/closed arrivals, region latency), instantiated under every
    ``--policy`` and run through a fresh cluster per cell with every
    ``--fault-plan`` injected.  Reports throughput, p50/p99 latency and
    abort/retry rates per cell; exits non-zero only when a cell's
    committed history fails the serializability audit.  ``cluster run
    --workload SPEC.json`` runs a single cell interactively.

``trace-report FILE [FILE ...]``
    Aggregate span traces (written by ``--trace``) into a top-spans
    table: call counts, total / self / max time per span name.  Given
    several files (one per process of a distributed run) the records
    are merged by trace id and the report appends the cross-process
    section: causal span trees for the slowest transactions, the
    per-stage wire-latency percentiles, and election annotations.
    ``--contention`` appends per-entity lock-contention analytics
    (wait percentiles, queue depth, convoy/starvation flags) derived
    from ``site.lock_wait`` spans.  Damaged lines (a crash-killed
    producer leaves a truncated tail) are skipped with a counted
    warning instead of failing the whole report.

Observability (:mod:`repro.obs`) cuts across the subcommands: ``-v`` /
``--quiet`` tune narration globally (``--log-json`` swaps it onto a
JSON-lines logger), while ``analyze`` / ``simulate`` / ``vet`` /
``cluster run`` / ``cluster serve`` accept ``--trace FILE`` (record a
span timeline) and ``--metrics`` (dump the process metrics registry to
stderr, Prometheus text format, on exit).  For ``cluster run`` and
``cluster serve``, ``--metrics`` also switches on the per-stage
wire-latency histograms (:mod:`repro.obs.distributed`).
"""

from __future__ import annotations

import argparse
import json
import sys

from .core import GeometricPicture, d_graph, decide_safety, decide_safety_exhaustive
from .dsl import parse_system, render_system
from .errors import ReproError
from .logic import CnfFormula, is_satisfiable
from .obs import log, metrics, trace
from .sim import estimate_violation_rate
from .viz import digraph_to_dot, render_plane


def _load_system(path: str):
    with open(path, encoding="utf-8") as handle:
        return parse_system(handle.read())


def cmd_analyze(args: argparse.Namespace) -> int:
    log.info(f"loading {args.file}")
    system = _load_system(args.file)
    verdict = decide_safety(system, want_certificate=args.certificate)
    if args.json:
        payload = verdict.to_dict()
        payload["transactions"] = system.names
        if args.exhaustive:
            payload["exhaustive_agrees"] = (
                decide_safety_exhaustive(system).safe == verdict.safe
            )
        log.result(json.dumps(payload, indent=2))
        return 0 if verdict.safe else 1
    log.out(f"transactions: {', '.join(system.names)}")
    sites_used: set[int] = set()
    for tx in system.transactions:
        sites_used |= tx.sites_used()
    log.out(f"sites used:   {sorted(sites_used)}")
    log.result(f"safe:         {verdict.safe}")
    log.result(f"method:       {verdict.method}")
    log.result(f"detail:       {verdict.detail}")
    if verdict.witness is not None:
        log.result(f"witness:      {verdict.witness}")
    if args.certificate and verdict.certificate is not None:
        log.result()
        log.result(verdict.certificate.describe())
    if args.exhaustive:
        ground_truth = decide_safety_exhaustive(system)
        agree = ground_truth.safe == verdict.safe
        log.out(f"exhaustive:   safe={ground_truth.safe} (agree: {agree})")
        if not agree:
            return 2
    if args.dot and len(system) == 2:
        log.result()
        log.result(digraph_to_dot(d_graph(*system.pair()), name="D(T1,T2)"))
    return 0 if verdict.safe else 1


def _load_plan(args: argparse.Namespace):
    """The :class:`~repro.faults.FaultPlan` named by ``--faults``, or
    ``None``; validated against *system* by the caller."""
    if getattr(args, "faults", None) is None:
        return None
    from .faults import FaultPlan

    log.info(f"loading fault plan {args.faults}")
    return FaultPlan.load(args.faults)


def cmd_simulate(args: argparse.Namespace) -> int:
    log.info(f"loading {args.file}")
    system = _load_system(args.file)
    plan = _load_plan(args)
    if plan is not None:
        plan.validate_against(system)
    fault_kwargs = {
        "fault_plan": plan,
        "deadlock_policy": args.deadlock_policy,
        "max_retries": args.max_retries,
    }
    if args.events:
        from .obs.events import EventLog
        from .sim import RandomDriver, run_once

        event_log = EventLog()
        result = run_once(
            system,
            RandomDriver(args.seed),
            event_log=event_log,
            fault_seed=args.seed,
            **fault_kwargs,
        )
        log.result(event_log.render())
        log.result(f"outcome: {result.outcome}")
        return 0 if result.outcome != "non-serializable" else 1
    rates = estimate_violation_rate(
        system, runs=args.runs, seed=args.seed, **fault_kwargs
    )
    if args.json:
        verdict = decide_safety(system, want_certificate=False)
        payload = {
            "runs": args.runs,
            "seed": args.seed,
            "rates": rates,
            "verdict": verdict.to_dict(),
            # The simulator saw no violation iff the static decision
            # says safe — false negatives are possible at low run
            # counts, so the bit is reported, not asserted.
            "agreement": (rates["non-serializable"] == 0) == verdict.safe,
        }
        if plan is not None:
            payload["fault_plan"] = args.faults
            payload["deadlock_policy"] = args.deadlock_policy
        log.result(json.dumps(payload, indent=2))
        return 0 if rates["non-serializable"] == 0 else 1
    log.out(f"runs: {args.runs} (seed {args.seed})")
    baseline = ("serializable", "non-serializable", "deadlock")
    extras = sorted(set(rates) - set(baseline))
    for outcome in (*baseline, *extras):
        log.result(f"  {outcome:>18}: {rates[outcome]:7.2%}")
    return 0 if rates["non-serializable"] == 0 else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import chaos_sweep

    plan = _load_plan(args)
    path = args.file
    if path is None and plan is not None:
        path = plan.system_path
    if path is None:
        log.error(
            "error: no system to run — pass a system file or a fault "
            'plan with an embedded "system" path'
        )
        return 2
    log.info(f"loading {path}")
    system = _load_system(path)
    if plan is not None:
        plan.validate_against(system)
    report = chaos_sweep(
        system,
        seeds=args.seeds,
        plan=plan,
        policy=args.deadlock_policy,
        max_retries=args.max_retries,
        fifo_grants=args.fifo,
        seed_base=args.seed_base,
    )
    if args.json:
        log.result(json.dumps(report.to_dict(), indent=2))
    else:
        log.result(report.render())
    return 0 if report.completed == report.seeds else 1


def cmd_plane(args: argparse.Namespace) -> int:
    system = _load_system(args.file)
    first, second = system.pair()
    for tx in (first, second):
        if not tx.is_totally_ordered():
            log.error(
                f"error: {tx.name} is not totally ordered; 'plane' draws "
                "the Fig. 2 picture of total orders"
            )
            return 2
    picture = GeometricPicture(
        first.a_linear_extension(), second.a_linear_extension()
    )
    curve = picture.find_nonserializable_curve()
    log.result(render_plane(picture, curve))
    log.result()
    if curve is None:
        log.result("no separating curve: the pair is safe (Proposition 1)")
        return 0
    log.result("separating curve shown: the pair is UNSAFE (Proposition 1)")
    return 1


def cmd_reduce(args: argparse.Namespace) -> int:
    from .core.reduction import propagate_units, reduce_cnf_to_pair
    from .core import decide_safety_exact
    from .logic import to_restricted_form

    formula = CnfFormula.parse(args.formula)
    payload: dict = {"formula": str(formula)}
    sat = is_satisfiable(formula)
    payload["satisfiable"] = sat
    if not args.json:
        log.out(f"F = {payload['formula']}")
        log.result(f"satisfiable (DPLL): {sat}")
    if not formula.is_restricted_form():
        formula = to_restricted_form(formula)
        payload["restricted_form"] = str(formula)
        if not args.json:
            log.out(f"restricted form: {formula}")
    prepared = propagate_units(formula)
    if isinstance(prepared, bool):
        if args.json:
            payload["settled_by_unit_propagation"] = prepared
            log.result(json.dumps(payload, indent=2))
        else:
            log.result(f"settled by unit propagation: satisfiable={prepared}")
        return 0
    artifacts = reduce_cnf_to_pair(prepared)
    verdict = decide_safety_exact(artifacts.first, artifacts.second)
    agree = (not verdict.safe) == sat
    if args.json:
        payload["entities"] = len(artifacts.database)
        payload["steps_per_transaction"] = len(artifacts.first)
        payload["verdict"] = verdict.to_dict()
        payload["agreement"] = agree
        log.result(json.dumps(payload, indent=2))
        return 0 if agree else 2
    log.out(
        f"reduced pair: {len(artifacts.database)} entities "
        f"(one per site), {len(artifacts.first)} steps per transaction"
    )
    log.result(f"safety: {'SAFE' if verdict.safe else 'UNSAFE'} ({verdict.detail})")
    log.result(f"Theorem 3 check (unsafe ⟺ satisfiable): {agree}")
    return 0 if agree else 2


def cmd_figures(args: argparse.Namespace) -> int:
    from .workloads import figure_1, figure_3, figure_5

    available = {"fig1": figure_1, "fig3": figure_3, "fig5": figure_5}
    names = [args.name] if args.name else sorted(available)
    for name in names:
        if name not in available:
            log.error(
                f"unknown figure {name!r}; choose from {sorted(available)}"
            )
            return 2
        system = available[name]()
        verdict = decide_safety(system, want_certificate=False)
        log.result(f"# {name}: safe={verdict.safe} via {verdict.method}")
        log.result(render_system(system))
    return 0


def _renamed(transaction, new_name):
    """A copy of *transaction* under *new_name* (for cross-file name
    collisions in batch vetting)."""
    from .core import Transaction

    return Transaction(
        new_name,
        transaction.database,
        transaction.steps,
        transaction.poset().arcs(),
    )


def cmd_vet(args: argparse.Namespace) -> int:
    from .errors import AdmissionError
    from .service import AdmissionRegistry, PairVettingPool, VerdictCache

    registry = AdmissionRegistry(
        cache=VerdictCache(args.cache_size),
        pool=PairVettingPool(
            workers=args.workers, max_retries=args.pool_retries
        ),
        cycle_limit=args.cycle_limit,
        admission_timeout=args.admission_timeout,
    )
    decisions = []
    skipped: list[str] = []
    try:
        for path in args.files:
            log.info(f"loading {path}")
            system = _load_system(path)
            for transaction in system.transactions:
                if transaction.name in registry:
                    suffix = 2
                    while f"{transaction.name}@{suffix}" in registry:
                        suffix += 1
                    transaction = _renamed(
                        transaction, f"{transaction.name}@{suffix}"
                    )
                try:
                    decisions.append(
                        registry.admit(
                            transaction, want_certificate=args.certificate
                        )
                    )
                except AdmissionError as exc:
                    # A protocol-level problem with this one transaction
                    # (wrong database, undecided cycle enumeration) must
                    # not abort the rest of the batch.
                    skipped.append(transaction.name)
                    log.error(f"SKIP   {transaction.name}  {exc}")
    finally:
        registry.pool.close()
    admitted = sum(decision.admitted for decision in decisions)
    clean = admitted == len(decisions) and not skipped
    if args.json:
        payload = {
            "files": list(args.files),
            "workers": args.workers,
            "admitted": admitted,
            "rejected": len(decisions) - admitted,
            "skipped": skipped,
            "decisions": [decision.to_dict() for decision in decisions],
            "stats": registry.stats_dict(),
        }
        log.result(json.dumps(payload, indent=2))
        return 0 if clean else 1
    for decision in decisions:
        if decision.admitted:
            log.out(
                f"ADMIT  {decision.name}  "
                f"(trivial={decision.pairs_trivial} "
                f"cached={decision.pairs_from_cache} "
                f"vetted={decision.pairs_vetted} "
                f"cycles={decision.cycles_checked})"
            )
        else:
            log.out(f"REJECT {decision.name}  {decision.verdict.detail}")
            if args.certificate and decision.verdict.certificate is not None:
                log.out(decision.verdict.certificate.describe())
    summary = (
        f"vetted {len(decisions)} transactions: "
        f"{admitted} admitted, {len(decisions) - admitted} rejected"
    )
    if skipped:
        summary += f", {len(skipped)} skipped"
    log.result(summary)
    log.out(registry.stats.render())
    return 0 if clean else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import AdmissionRegistry, PairVettingPool, VerdictCache

    registry = AdmissionRegistry(
        cache=VerdictCache(args.cache_size),
        pool=PairVettingPool(
            workers=args.workers, max_retries=args.pool_retries
        ),
        cycle_limit=args.cycle_limit,
        admission_timeout=args.admission_timeout,
    )

    def respond(line: str) -> None:
        print(line, flush=True)

    def database_prelude() -> str | None:
        """The registry's database rendered back into DSL, so ADMIT
        requests after the first can omit the ``database`` section."""
        database = registry.database
        if database is None:
            return None
        lines = ["database"]
        for site in range(1, database.sites + 1):
            entities = database.entities_at(site)
            if entities:
                lines.append(f"  site {site}: {' '.join(entities)}")
        return "\n".join(lines)

    respond("READY")
    try:
        for raw in sys.stdin:
            line = raw.strip()
            if not line:
                continue
            command, _, rest = line.partition(" ")
            command = command.upper()
            try:
                if command == "QUIT":
                    respond("OK bye")
                    break
                if command == "STATS":
                    respond("STATS " + json.dumps(registry.stats_dict()))
                elif command == "METRICS":
                    respond(
                        "METRICS " + json.dumps(metrics.REGISTRY.to_dict())
                    )
                elif command == "EVICT":
                    name = rest.strip()
                    registry.evict(name)
                    respond(f"OK evicted {name}")
                elif command == "ADMIT":
                    # The request line carries a DSL document with ';'
                    # standing in for newlines; the database section may
                    # be omitted once the registry has one.
                    text = rest.replace(";", "\n")
                    prelude = database_prelude()
                    if prelude is not None and not any(
                        line.strip() == "database"
                        for line in text.splitlines()
                    ):
                        text = prelude + "\n" + text
                    system = parse_system(text)
                    admitted_names = []
                    rejection = None
                    for transaction in system.transactions:
                        decision = registry.admit(
                            transaction, want_certificate=False
                        )
                        if not decision.admitted:
                            rejection = decision
                            break
                        admitted_names.append(decision.name)
                    if rejection is not None:
                        respond(
                            f"REJECT {rejection.name} "
                            f"{rejection.verdict.detail}"
                        )
                    else:
                        respond(f"OK admitted {' '.join(admitted_names)}")
                else:
                    respond(f"ERR unknown command {command!r}")
            except ReproError as exc:
                respond(f"ERR {exc}")
    finally:
        registry.pool.close()
    return 0


def cmd_cluster_run(args: argparse.Namespace) -> int:
    from .cluster import run_cluster_sync
    from .obs.events import EventLog

    workload_kwargs: dict = {}
    if args.workload is not None:
        if args.file is not None:
            log.error(
                "error: give either a system FILE or --workload SPEC.json, "
                "not both"
            )
            return 2
        if args.replicas > 1:
            log.error(
                "error: --workload drives the plain cluster runtime; "
                "it cannot be combined with --replicas"
            )
            return 2
        from .workloads.traffic import TrafficSpec, generate_workload

        log.info(f"loading traffic spec {args.workload}")
        spec = TrafficSpec.load(args.workload)
        generated = generate_workload(
            spec, policy=args.workload_policy, seed=args.seed
        )
        system = generated.system
        # The spec owns the arrival process, concurrency and latency
        # matrix; --rounds/--concurrency are ignored for workload runs.
        workload_kwargs = generated.cluster_kwargs()
        if args.rounds != 1:
            log.info("--rounds is ignored with --workload (spec sets the size)")
    elif args.file is None:
        log.error("error: need a system FILE (or --workload SPEC.json)")
        return 2
    else:
        log.info(f"loading {args.file}")
        system = _load_system(args.file)
    plan = _load_plan(args)
    if plan is not None:
        # Fail fast, before any server boots: a typo'd site id would
        # otherwise silently inject nothing.
        plan.validate_against(system)
    event_log = EventLog() if args.events else None
    common = dict(
        transport=args.transport,
        rounds=args.rounds,
        concurrency=args.concurrency,
        deadlock_policy=args.deadlock_policy or "abort-youngest",
        max_retries=args.max_retries,
        seed=args.seed,
        vet=not args.no_vet,
        fault_plan=plan,
        event_log=event_log,
        grant_timeout=args.grant_timeout,
        request_timeout=args.request_timeout,
        wire_metrics=args.metrics,
        codec=args.codec,
        batch=args.batch,
        recorder=not args.no_recorder,
        postmortem_dir=args.postmortem,
        use_uvloop=args.uvloop,
    )
    common.update(workload_kwargs)
    if args.replicas > 1:
        from .replica import run_replicated_sync

        report = run_replicated_sync(
            system, replicas=args.replicas, lease_ticks=args.lease_ticks, **common
        )
    else:
        report = run_cluster_sync(system, **common)
    if args.json:
        log.result(json.dumps(report.to_dict(), indent=2))
    else:
        log.result(report.render())
    if event_log is not None and not args.json:
        log.result()
        for event in event_log:
            log.result(str(event))
    ok = (
        report.serializable
        and report.audit_complete
        and report.committed == report.transactions
    )
    return 0 if ok else 1


def cmd_arena(args: argparse.Namespace) -> int:
    import os

    from .arena import run_arena
    from .workloads.traffic import TrafficSpec

    specs = []
    for path in args.workload:
        log.info(f"loading traffic spec {path}")
        specs.append(TrafficSpec.load(path))
    policies = args.policy or ["2pl", "tree"]
    fault_plans: list = []
    for label in args.fault_plan or ["none"]:
        if label == "none":
            fault_plans.append(("none", None))
        else:
            from .faults import FaultPlan

            log.info(f"loading fault plan {label}")
            name = os.path.splitext(os.path.basename(label))[0]
            fault_plans.append((name, FaultPlan.load(label)))

    report = run_arena(
        specs,
        policies=policies,
        fault_plans=fault_plans,
        seed=args.seed,
        transport=args.transport,
        deadlock_policy=args.deadlock_policy or "abort-youngest",
        max_retries=args.max_retries,
        grant_timeout=args.grant_timeout,
        request_timeout=args.request_timeout,
        vet=not args.no_vet,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        log.info(f"report written to {args.out}")
    if args.json:
        log.result(json.dumps(report.to_dict(), indent=2))
    else:
        log.result(report.render())
    # Aborts under overload or faults are performance outcomes; the
    # arena fails only when a committed history breaks the audit.
    return 0 if report.all_ok else 1


def cmd_cluster_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .cluster import SiteServer, TcpTransport
    from .obs import distributed

    if args.replica_index >= args.replicas:
        log.error(
            f"error: --replica-index {args.replica_index} out of range "
            f"for --replicas {args.replicas}"
        )
        return 2

    addresses: dict[int, tuple[str, int]] = {}
    for spec in args.peer or ():
        site_text, _, host_port = spec.partition("=")
        host, _, port_text = host_port.rpartition(":")
        try:
            addresses[int(site_text)] = (host, int(port_text))
        except ValueError:
            log.error(f"error: bad --peer {spec!r} (want ADDR=HOST:PORT)")
            return 2

    if args.replicas > 1:
        from .replica import replica_address

        address = replica_address(args.site, args.replica_index)
    else:
        address = args.site
    addresses[address] = (args.host, args.port)

    if args.metrics:
        # Wire-stage histograms for this server's frames; the registry
        # dump on exit (main's --metrics handling) prints them.
        distributed.WIRE.enable_metrics()

    async def serve() -> None:
        transport = TcpTransport(addresses)
        if args.replicas > 1:
            from .replica import LogicalClock, ReplicaGroup, ReplicaServer

            group = ReplicaGroup(
                args.site, args.replicas, lease_ticks=args.lease_ticks
            )
            server = ReplicaServer(
                group,
                args.replica_index,
                transport=transport,
                clock=LogicalClock(),
                peers=tuple(sorted(addresses)),
                deadlock_policy=args.deadlock_policy or "abort-youngest",
                grant_timeout=args.grant_timeout,
                seed=args.seed,
            )
        else:
            server = SiteServer(
                args.site,
                transport=transport,
                peers=tuple(sorted(addresses)),
                deadlock_policy=args.deadlock_policy or "abort-youngest",
                grant_timeout=args.grant_timeout,
                seed=args.seed,
            )
        await server.start()
        bound = transport.addresses[address]
        role = (
            f"site {args.site}"
            if args.replicas == 1
            else f"site {args.site} replica {args.replica_index} "
            f"(address {address})"
        )
        log.result(f"{role} listening on {bound[0]}:{bound[1]}")
        try:
            while server.running:
                await asyncio.sleep(0.2)
        finally:
            await server.stop()
            await transport.close()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        log.info("interrupted")
    return 0


def cmd_cluster_bench(args: argparse.Namespace) -> int:
    import time as _time

    from .cluster import run_cluster_sync
    from .sim import RandomDriver, run_once

    log.info(f"loading {args.file}")
    system = _load_system(args.file)
    results: dict[str, dict] = {}

    started = _time.perf_counter()
    for run in range(args.rounds):
        run_once(system, RandomDriver(args.seed + run))
    elapsed = _time.perf_counter() - started
    txns = args.rounds * len(system)
    results["simulator"] = {
        "transactions": txns,
        "seconds": elapsed,
        "txn_per_s": txns / elapsed if elapsed else float("inf"),
    }

    for transport in ("memory", "tcp"):
        report = run_cluster_sync(
            system,
            transport=transport,
            rounds=args.rounds,
            concurrency=args.concurrency,
            seed=args.seed,
            request_timeout=30.0 if transport == "tcp" else None,
        )
        results[transport] = {
            "transactions": report.transactions,
            "committed": report.committed,
            "seconds": report.wall_seconds,
            "txn_per_s": (
                report.transactions / report.wall_seconds
                if report.wall_seconds
                else float("inf")
            ),
            "serializable": report.serializable,
        }

    if args.json:
        log.result(json.dumps(results, indent=2))
        return 0
    log.result(f"{'path':<10} {'txns':>6} {'seconds':>9} {'txn/s':>10}")
    for name, row in results.items():
        log.result(
            f"{name:<10} {row['transactions']:>6} "
            f"{row['seconds']:>9.3f} {row['txn_per_s']:>10.0f}"
        )
    return 0


def cmd_cluster_status(args: argparse.Namespace) -> int:
    import asyncio

    from .cluster import TcpTransport
    from .obs.insight import probe_sites

    addresses: dict[int, tuple[str, int]] = {}
    for spec in args.peer or ():
        site_text, _, host_port = spec.partition("=")
        host, _, port_text = host_port.rpartition(":")
        try:
            addresses[int(site_text)] = (host, int(port_text))
        except ValueError:
            log.error(f"error: bad --peer {spec!r} (want ADDR=HOST:PORT)")
            return 2
    if not addresses:
        log.error("error: need at least one --peer ADDR=HOST:PORT to probe")
        return 2

    async def probe():
        transport = TcpTransport(addresses)
        try:
            return await probe_sites(
                transport, sorted(addresses), timeout=args.timeout
            )
        finally:
            await transport.close()

    status = asyncio.run(probe())
    if args.json:
        log.result(json.dumps(status.to_dict(), indent=2))
    else:
        log.result(status.render())
    if status.errors:
        return 2
    return 1 if status.cycles else 0


def cmd_postmortem(args: argparse.Namespace) -> int:
    from .obs.insight import render_postmortem

    try:
        log.result(render_postmortem(args.directory, tail=args.tail))
    except ValueError as exc:
        log.error(f"error: {exc}")
        return 2
    return 0


def cmd_trace_report(args: argparse.Namespace) -> int:
    from .obs.report import summarize_files

    try:
        output = summarize_files(args.file, limit=args.limit)
    except ValueError as exc:
        log.error(f"error: {exc}")
        return 2
    if args.contention:
        from .obs.insight import contention_from_records, render_contention
        from .obs.report import load_trace

        records: list[dict] = []
        for path in args.file:
            records.extend(load_trace(path, strict=False))
        output += "\n\n" + render_contention(contention_from_records(records))
    log.result(output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Safety of distributed locked transaction systems "
            "(Kanellakis & Papadimitriou, PODS 1982)"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more narration (-vv for diagnostics)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="less narration (-qq silences even results)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit output as JSON-lines log records on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--trace",
            metavar="FILE",
            default=None,
            help="record a JSONL span trace into FILE",
        )
        command.add_argument(
            "--metrics",
            action="store_true",
            help="dump the metrics registry to stderr on exit "
            "(Prometheus text format)",
        )

    analyze = sub.add_parser("analyze", help="decide safety of a system file")
    analyze.add_argument("file")
    analyze.add_argument("--certificate", action="store_true")
    analyze.add_argument("--exhaustive", action="store_true")
    analyze.add_argument("--dot", action="store_true")
    analyze.add_argument("--json", action="store_true")
    add_obs_flags(analyze)
    analyze.set_defaults(func=cmd_analyze)

    def add_fault_flags(command: argparse.ArgumentParser) -> None:
        from .faults import POLICIES

        command.add_argument(
            "--faults",
            metavar="PLAN.json",
            default=None,
            help="inject the seeded fault plan in PLAN.json",
        )
        command.add_argument(
            "--deadlock-policy",
            choices=(*POLICIES, "none"),
            default=None,
            help="resolve detected deadlocks by rolling back a victim "
            "(default: report the deadlock and stop)",
        )
        command.add_argument(
            "--max-retries",
            type=int,
            default=3,
            help="abort-and-requeue budget per transaction (default 3)",
        )

    simulate = sub.add_parser("simulate", help="Monte-Carlo execution")
    simulate.add_argument("file")
    simulate.add_argument("--runs", type=int, default=1000)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--json", action="store_true")
    simulate.add_argument(
        "--events",
        action="store_true",
        help="run once and print the lock/step event timeline",
    )
    add_fault_flags(simulate)
    add_obs_flags(simulate)
    simulate.set_defaults(func=cmd_simulate)

    chaos = sub.add_parser(
        "chaos", help="seed-sweep fault injection and recovery statistics"
    )
    chaos.add_argument(
        "file",
        nargs="?",
        default=None,
        help="system file (optional when the plan embeds one)",
    )
    chaos.add_argument("--seeds", type=int, default=50)
    chaos.add_argument(
        "--seed-base", type=int, default=0, help="first driver seed"
    )
    chaos.add_argument(
        "--fifo",
        action="store_true",
        help="grant lock queues first-come-first-served",
    )
    chaos.add_argument("--json", action="store_true")
    add_fault_flags(chaos)
    chaos.set_defaults(func=cmd_chaos, deadlock_policy="abort-youngest")
    add_obs_flags(chaos)

    plane = sub.add_parser("plane", help="render the coordinated plane")
    plane.add_argument("file")
    plane.set_defaults(func=cmd_plane)

    reduce_cmd = sub.add_parser("reduce", help="Theorem 3 on a CNF formula")
    reduce_cmd.add_argument("formula")
    reduce_cmd.add_argument("--json", action="store_true")
    reduce_cmd.set_defaults(func=cmd_reduce)

    figures = sub.add_parser("figures", help="print the paper's systems")
    figures.add_argument("name", nargs="?")
    figures.set_defaults(func=cmd_figures)

    vet = sub.add_parser(
        "vet", help="batch-vet system files through one admission registry"
    )
    vet.add_argument("files", nargs="+")
    vet.add_argument("--workers", type=int, default=1)
    vet.add_argument("--cache-size", type=int, default=65536)
    vet.add_argument("--cycle-limit", type=int, default=None)
    vet.add_argument("--certificate", action="store_true")
    vet.add_argument("--json", action="store_true")

    def add_degradation_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--admission-timeout",
            type=float,
            metavar="SECONDS",
            default=None,
            help="per-admission pair-vetting budget (default: none)",
        )
        command.add_argument(
            "--pool-retries",
            type=int,
            default=2,
            help="worker-respawn attempts per batch before vetting "
            "inline (default 2)",
        )

    add_degradation_flags(vet)
    add_obs_flags(vet)
    vet.set_defaults(func=cmd_vet)

    cluster = sub.add_parser(
        "cluster",
        help="the networked multi-site runtime (repro.cluster)",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    cluster_run = cluster_sub.add_parser(
        "run", help="boot an in-process cluster and run a system through it"
    )
    cluster_run.add_argument(
        "file",
        nargs="?",
        default=None,
        help="system description (omit when using --workload)",
    )
    cluster_run.add_argument(
        "--workload",
        metavar="SPEC.json",
        default=None,
        help="generate the system from a traffic spec "
        "(repro.workloads.traffic) instead of reading a system FILE; "
        "the spec's arrival process, concurrency and latency matrix "
        "drive the run",
    )
    cluster_run.add_argument(
        "--workload-policy",
        choices=("2pl", "tree", "vetted-optimal"),
        default="2pl",
        help="locking policy imposed on --workload transactions "
        "(default 2pl)",
    )
    cluster_run.add_argument(
        "--transport",
        choices=("memory", "tcp"),
        default="memory",
        help="deterministic in-memory queues, or real localhost sockets",
    )
    cluster_run.add_argument(
        "--rounds",
        type=int,
        default=1,
        help="instances of every transaction to run (default 1)",
    )
    cluster_run.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="coordinators running at once (default 8)",
    )
    cluster_run.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="N",
        help="replicas per logical site; >1 runs the replicated "
        "runtime (repro.replica) with leased leaders and failover",
    )
    cluster_run.add_argument(
        "--lease-ticks",
        type=int,
        default=64,
        metavar="TICKS",
        help="leader lease length in logical clock ticks (default 64; "
        "replicated runs only)",
    )
    cluster_run.add_argument("--seed", type=int, default=0)
    cluster_run.add_argument(
        "--no-vet",
        action="store_true",
        help="skip the static admission gateway",
    )
    cluster_run.add_argument(
        "--grant-timeout",
        type=int,
        default=None,
        metavar="TICKS",
        help="per-site lock-grant timeout (fallback when probes are lost)",
    )
    cluster_run.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request round-trip bound (needed under message drops)",
    )
    cluster_run.add_argument(
        "--codec",
        choices=("json", "binary"),
        default="json",
        help="wire codec offered to every site via hello negotiation "
        "(default json; binary falls back to json against old peers)",
    )
    batch_group = cluster_run.add_mutually_exclusive_group()
    batch_group.add_argument(
        "--batch",
        dest="batch",
        action="store_true",
        help="pipeline all currently-eligible same-site steps in one "
        "batch frame per round trip",
    )
    batch_group.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        help="one request frame per step (the default)",
    )
    cluster_run.add_argument(
        "--uvloop",
        action="store_true",
        help="run on uvloop when installed (silently ignored when not)",
    )
    cluster_run.add_argument(
        "--events",
        action="store_true",
        help="collect and print the cluster event timeline",
    )
    cluster_run.add_argument(
        "--postmortem",
        metavar="DIR",
        default=None,
        help="write a post-mortem bundle (flight ring, report, events, "
        "traces) into DIR when the run ends non-serializable, with a "
        "partial commit, or with an incomplete audit; render it with "
        "`repro postmortem DIR` (REPRO_POSTMORTEM works too)",
    )
    cluster_run.add_argument(
        "--no-recorder",
        action="store_true",
        help="disable the always-on flight recorder for this run",
    )
    cluster_run.add_argument("--json", action="store_true")
    add_fault_flags(cluster_run)
    add_obs_flags(cluster_run)
    cluster_run.set_defaults(
        func=cmd_cluster_run, deadlock_policy="abort-youngest", batch=False
    )

    arena = sub.add_parser(
        "arena",
        help="sweep a policy × workload × fault-plan matrix (repro.arena)",
    )
    arena.add_argument(
        "--workload",
        action="append",
        required=True,
        metavar="SPEC.json",
        help="traffic spec to include (repeatable)",
    )
    arena.add_argument(
        "--policy",
        action="append",
        choices=("2pl", "tree", "vetted-optimal"),
        help="locking policy to include (repeatable; default: 2pl, tree)",
    )
    arena.add_argument(
        "--fault-plan",
        action="append",
        metavar="PLAN.json",
        help="fault plan to include, or the literal 'none' for a "
        "fault-free column (repeatable; default: none)",
    )
    arena.add_argument(
        "--transport",
        choices=("memory", "tcp"),
        default="memory",
        help="transport for every cell (default memory: deterministic "
        "fingerprints per cell)",
    )
    arena.add_argument("--seed", type=int, default=0)
    arena.add_argument(
        "--max-retries",
        type=int,
        default=5,
        help="abort-and-retry budget per transaction (default 5)",
    )
    arena.add_argument(
        "--grant-timeout",
        type=int,
        default=None,
        metavar="TICKS",
        help="per-site lock-grant timeout for every cell",
    )
    arena.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request round-trip bound for every cell",
    )
    arena.add_argument(
        "--no-vet",
        action="store_true",
        help="skip the admission gateway in every cell",
    )
    arena.add_argument("--json", action="store_true")
    arena.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the JSON report to FILE",
    )
    arena.set_defaults(func=cmd_arena, deadlock_policy="abort-youngest")

    cluster_serve = cluster_sub.add_parser(
        "serve", help="run one TCP site server in the foreground"
    )
    cluster_serve.add_argument("--site", type=int, required=True)
    cluster_serve.add_argument("--host", default="127.0.0.1")
    cluster_serve.add_argument(
        "--port", type=int, default=0, help="0 picks an ephemeral port"
    )
    cluster_serve.add_argument(
        "--peer",
        action="append",
        metavar="ADDR=HOST:PORT",
        help="address of another server (repeat per peer; needed for "
        "deadlock probes; with --replicas, ADDR is the replica "
        "address site*1000+index)",
    )
    cluster_serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="N",
        help="size of this site's replica group (serve one replica "
        "of it; default 1 = plain site server)",
    )
    cluster_serve.add_argument(
        "--replica-index",
        type=int,
        default=0,
        metavar="I",
        help="which replica of the group this process is (default 0)",
    )
    cluster_serve.add_argument(
        "--lease-ticks", type=int, default=64, metavar="TICKS"
    )
    cluster_serve.add_argument("--seed", type=int, default=0)
    cluster_serve.add_argument(
        "--grant-timeout", type=int, default=None, metavar="TICKS"
    )
    from .faults import POLICIES as _policies

    cluster_serve.add_argument(
        "--deadlock-policy",
        choices=(*_policies, "none"),
        default="abort-youngest",
    )
    add_obs_flags(cluster_serve)
    cluster_serve.set_defaults(func=cmd_cluster_serve)

    cluster_bench = cluster_sub.add_parser(
        "bench",
        help="quick simulator vs memory vs TCP throughput comparison",
    )
    cluster_bench.add_argument("file")
    cluster_bench.add_argument("--rounds", type=int, default=50)
    cluster_bench.add_argument("--concurrency", type=int, default=8)
    cluster_bench.add_argument("--seed", type=int, default=0)
    cluster_bench.add_argument("--json", action="store_true")
    cluster_bench.set_defaults(func=cmd_cluster_bench)

    cluster_status = cluster_sub.add_parser(
        "status",
        help="probe live sites and stitch the global wait-for graph",
    )
    cluster_status.add_argument(
        "--peer",
        action="append",
        metavar="ADDR=HOST:PORT",
        help="a site (or replica address) to probe (repeatable)",
    )
    cluster_status.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="seconds to wait for each site's status reply",
    )
    cluster_status.add_argument("--json", action="store_true")
    cluster_status.set_defaults(func=cmd_cluster_status)

    postmortem = sub.add_parser(
        "postmortem",
        help="render a post-mortem bundle written by a bad cluster run",
    )
    postmortem.add_argument("directory")
    postmortem.add_argument(
        "--tail",
        type=int,
        default=20,
        help="flight-recorder entries to show (newest last)",
    )
    postmortem.set_defaults(func=cmd_postmortem)

    trace_report = sub.add_parser(
        "trace-report",
        help="summarize --trace span files (merging one per process)",
    )
    trace_report.add_argument("file", nargs="+")
    trace_report.add_argument(
        "--limit",
        type=int,
        default=None,
        help="show only the top N spans by self time",
    )
    trace_report.add_argument(
        "--contention",
        action="store_true",
        help="append per-entity lock-contention analytics (wait "
        "percentiles, queue depth, convoy/starvation flags) derived "
        "from site.lock_wait spans",
    )
    trace_report.set_defaults(func=cmd_trace_report)

    serve = sub.add_parser(
        "serve", help="line-oriented admission request loop on stdin"
    )
    serve.add_argument("--workers", type=int, default=1)
    serve.add_argument("--cache-size", type=int, default=65536)
    serve.add_argument("--cycle-limit", type=int, default=None)
    add_degradation_flags(serve)
    serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    log.set_verbosity(args.verbose - args.quiet)
    if args.log_json:
        log.use_json_logging()
    else:
        log.use_plain_output()
    trace_file = getattr(args, "trace", None)
    if trace_file:
        trace.start_tracing(trace_file)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        log.error(f"error: {exc}")
        return 2
    except ReproError as exc:
        log.error(f"error: {exc}")
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe early.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
    finally:
        if trace_file:
            trace.stop_tracing()
            log.info(f"trace written to {trace_file}")
        if getattr(args, "metrics", False):
            print(metrics.REGISTRY.to_prometheus(), file=sys.stderr, end="")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
