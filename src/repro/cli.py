"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------

``analyze FILE``
    Parse a system description (:mod:`repro.dsl`) and decide safety;
    ``--certificate`` prints the full unsafeness certificate,
    ``--exhaustive`` cross-checks against the definitional decider,
    ``--dot`` emits ``D(T1, T2)`` in Graphviz DOT.

``simulate FILE``
    Monte-Carlo execution on the distributed lock-manager simulator.

``plane FILE``
    Render the coordinated plane of a totally ordered pair (Fig. 2
    style), with the separating curve when one exists.

``reduce FORMULA``
    Theorem 3 end-to-end: compile a CNF formula to a transaction pair
    and decide its safety (⟺ unsatisfiability).

``figures [NAME]``
    Print the paper's figure systems in the DSL, with their verdicts.
"""

from __future__ import annotations

import argparse
import sys

from .core import GeometricPicture, d_graph, decide_safety, decide_safety_exhaustive
from .dsl import parse_system, render_system
from .errors import ReproError
from .logic import CnfFormula, is_satisfiable
from .sim import estimate_violation_rate
from .viz import digraph_to_dot, render_plane


def _load_system(path: str):
    with open(path, encoding="utf-8") as handle:
        return parse_system(handle.read())


def cmd_analyze(args: argparse.Namespace) -> int:
    system = _load_system(args.file)
    verdict = decide_safety(system, want_certificate=args.certificate)
    if args.json:
        import json

        payload = verdict.to_dict()
        payload["transactions"] = system.names
        if args.exhaustive:
            payload["exhaustive_agrees"] = (
                decide_safety_exhaustive(system).safe == verdict.safe
            )
        print(json.dumps(payload, indent=2))
        return 0 if verdict.safe else 1
    print(f"transactions: {', '.join(system.names)}")
    print(f"sites used:   {sorted(set().union(*(t.sites_used() for t in system.transactions)))}")
    print(f"safe:         {verdict.safe}")
    print(f"method:       {verdict.method}")
    print(f"detail:       {verdict.detail}")
    if verdict.witness is not None:
        print(f"witness:      {verdict.witness}")
    if args.certificate and verdict.certificate is not None:
        print()
        print(verdict.certificate.describe())
    if args.exhaustive:
        ground_truth = decide_safety_exhaustive(system)
        agree = ground_truth.safe == verdict.safe
        print(f"exhaustive:   safe={ground_truth.safe} (agree: {agree})")
        if not agree:
            return 2
    if args.dot and len(system) == 2:
        print()
        print(digraph_to_dot(d_graph(*system.pair()), name="D(T1,T2)"))
    return 0 if verdict.safe else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    system = _load_system(args.file)
    rates = estimate_violation_rate(system, runs=args.runs, seed=args.seed)
    print(f"runs: {args.runs} (seed {args.seed})")
    for outcome in ("serializable", "non-serializable", "deadlock"):
        print(f"  {outcome:>18}: {rates[outcome]:7.2%}")
    return 0 if rates["non-serializable"] == 0 else 1


def cmd_plane(args: argparse.Namespace) -> int:
    system = _load_system(args.file)
    first, second = system.pair()
    for tx in (first, second):
        if not tx.is_totally_ordered():
            print(
                f"error: {tx.name} is not totally ordered; 'plane' draws "
                "the Fig. 2 picture of total orders",
                file=sys.stderr,
            )
            return 2
    picture = GeometricPicture(
        first.a_linear_extension(), second.a_linear_extension()
    )
    curve = picture.find_nonserializable_curve()
    print(render_plane(picture, curve))
    print()
    if curve is None:
        print("no separating curve: the pair is safe (Proposition 1)")
        return 0
    print("separating curve shown: the pair is UNSAFE (Proposition 1)")
    return 1


def cmd_reduce(args: argparse.Namespace) -> int:
    from .core.reduction import propagate_units, reduce_cnf_to_pair
    from .core import decide_safety_exact
    from .logic import to_restricted_form

    formula = CnfFormula.parse(args.formula)
    print(f"F = {formula}")
    sat = is_satisfiable(formula)
    print(f"satisfiable (DPLL): {sat}")
    if not formula.is_restricted_form():
        formula = to_restricted_form(formula)
        print(f"restricted form: {formula}")
    prepared = propagate_units(formula)
    if isinstance(prepared, bool):
        print(f"settled by unit propagation: satisfiable={prepared}")
        return 0
    artifacts = reduce_cnf_to_pair(prepared)
    print(
        f"reduced pair: {len(artifacts.database)} entities "
        f"(one per site), {len(artifacts.first)} steps per transaction"
    )
    verdict = decide_safety_exact(artifacts.first, artifacts.second)
    print(f"safety: {'SAFE' if verdict.safe else 'UNSAFE'} ({verdict.detail})")
    agree = (not verdict.safe) == sat
    print(f"Theorem 3 check (unsafe ⟺ satisfiable): {agree}")
    return 0 if agree else 2


def cmd_figures(args: argparse.Namespace) -> int:
    from .workloads import figure_1, figure_3, figure_5

    available = {"fig1": figure_1, "fig3": figure_3, "fig5": figure_5}
    names = [args.name] if args.name else sorted(available)
    for name in names:
        if name not in available:
            print(
                f"unknown figure {name!r}; choose from {sorted(available)}",
                file=sys.stderr,
            )
            return 2
        system = available[name]()
        verdict = decide_safety(system, want_certificate=False)
        print(f"# {name}: safe={verdict.safe} via {verdict.method}")
        print(render_system(system))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Safety of distributed locked transaction systems "
            "(Kanellakis & Papadimitriou, PODS 1982)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="decide safety of a system file")
    analyze.add_argument("file")
    analyze.add_argument("--certificate", action="store_true")
    analyze.add_argument("--exhaustive", action="store_true")
    analyze.add_argument("--dot", action="store_true")
    analyze.add_argument("--json", action="store_true")
    analyze.set_defaults(func=cmd_analyze)

    simulate = sub.add_parser("simulate", help="Monte-Carlo execution")
    simulate.add_argument("file")
    simulate.add_argument("--runs", type=int, default=1000)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=cmd_simulate)

    plane = sub.add_parser("plane", help="render the coordinated plane")
    plane.add_argument("file")
    plane.set_defaults(func=cmd_plane)

    reduce_cmd = sub.add_parser("reduce", help="Theorem 3 on a CNF formula")
    reduce_cmd.add_argument("formula")
    reduce_cmd.set_defaults(func=cmd_reduce)

    figures = sub.add_parser("figures", help="print the paper's systems")
    figures.add_argument("name", nargs="?")
    figures.set_defaults(func=cmd_figures)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
