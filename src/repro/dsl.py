"""A small text format for distributed locked transaction systems.

The CLI (``python -m repro``) and downstream users describe systems in
plain text instead of Python::

    # two-site system, Fig. 3-like
    database
      site 1: x y
      site 2: z

    transaction T1
      site 1: Lx x Ly y Ux Uy
      site 2: Lz z Uz
      precede Ux -> Lz

    transaction T2
      site 1: Ly y Lx x Uy Ux
      site 2: Lz z Uz

Step tokens: ``Lx`` locks entity ``x``, ``Ux`` unlocks it, a bare
entity name is an update.  A second update of the same entity within a
transaction is written ``x#1`` (then ``x#2``, ...).  ``precede A -> B``
adds a cross-site precedence between two step tokens.  Lines starting
with ``#`` (or blank) are ignored.  Steps listed on one ``site`` line
are chained in order; the site number must match the database
declaration for every entity on the line.
"""

from __future__ import annotations

import re

from .core.entity import DistributedDatabase
from .core.schedule import TransactionSystem
from .core.step import Step, StepKind
from .core.transaction import Transaction
from .errors import ModelError


class DslError(ModelError):
    """A syntax or consistency error in the system description."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _parse_step_token(
    token: str, entities: set[str], line_number: int
) -> Step:
    """Resolve one step token against the declared entity names."""
    if "#" in token:
        base, _, seq_text = token.partition("#")
        if not seq_text.isdigit():
            raise DslError(line_number, f"bad update index in {token!r}")
        if base not in entities:
            raise DslError(line_number, f"unknown entity {base!r}")
        return Step(StepKind.UPDATE, base, int(seq_text))
    if token in entities:
        return Step(StepKind.UPDATE, token)
    if len(token) > 1 and token[0] in ("L", "U") and token[1:] in entities:
        kind = StepKind.LOCK if token[0] == "L" else StepKind.UNLOCK
        return Step(kind, token[1:])
    raise DslError(
        line_number,
        f"cannot resolve step token {token!r} (entities: "
        f"{sorted(entities)})",
    )


def parse_system(text: str) -> TransactionSystem:
    """Parse a system description; raises :class:`DslError` on problems."""
    stored_at: dict[str, int] = {}
    transactions: list[Transaction] = []

    section: str | None = None  # None | "database" | "transaction"
    tx_name: str | None = None
    tx_steps: list[Step] = []
    tx_precedences: list[tuple[Step, Step]] = []
    tx_sites_seen: set[int] = set()
    database: DistributedDatabase | None = None

    def finish_transaction(line_number: int) -> None:
        nonlocal tx_name, tx_steps, tx_precedences, tx_sites_seen
        if tx_name is None:
            return
        if not tx_steps:
            raise DslError(line_number, f"transaction {tx_name!r} is empty")
        try:
            transactions.append(
                Transaction(tx_name, database, tx_steps, tx_precedences)
            )
        except ModelError as exc:
            raise DslError(
                line_number, f"transaction {tx_name!r}: {exc}"
            ) from exc
        tx_name, tx_steps, tx_precedences = None, [], []
        tx_sites_seen = set()

    for line_number, raw in enumerate(text.splitlines(), start=1):
        # '#' starts a comment only at line start or after whitespace —
        # 'x#1' (second update of x) contains a non-comment '#'.
        line = re.sub(r"(^|\s)#.*$", "", raw).strip()
        if not line:
            continue
        tokens = line.split()
        head = tokens[0]

        if head == "database":
            if len(tokens) != 1:
                raise DslError(line_number, "'database' takes no arguments")
            section = "database"
            continue

        if head == "transaction":
            if len(tokens) != 2:
                raise DslError(
                    line_number, "expected: transaction <name>"
                )
            if not stored_at:
                raise DslError(
                    line_number, "declare the database before transactions"
                )
            if database is None:
                database = DistributedDatabase(stored_at)
            finish_transaction(line_number)
            section = "transaction"
            tx_name = tokens[1]
            continue

        if head == "site":
            if len(tokens) < 3 or not tokens[1].rstrip(":").isdigit():
                raise DslError(
                    line_number, "expected: site <number>: <items...>"
                )
            site = int(tokens[1].rstrip(":"))
            items = [token.rstrip(":") for token in tokens[2:]]
            if section == "database":
                for entity in items:
                    if entity in stored_at:
                        raise DslError(
                            line_number,
                            f"entity {entity!r} declared twice",
                        )
                    stored_at[entity] = site
                continue
            if section == "transaction":
                entities = set(stored_at)
                previous: Step | None = None
                for token in items:
                    step = _parse_step_token(token, entities, line_number)
                    if stored_at[step.entity] != site:
                        raise DslError(
                            line_number,
                            f"entity {step.entity!r} is stored at site "
                            f"{stored_at[step.entity]}, not {site}",
                        )
                    if step in tx_steps:
                        raise DslError(
                            line_number,
                            f"step {step} repeated in {tx_name!r} (use "
                            "x#1 for a second update)",
                        )
                    tx_steps.append(step)
                    if previous is not None:
                        tx_precedences.append((previous, step))
                    previous = step
                if site in tx_sites_seen:
                    raise DslError(
                        line_number,
                        f"site {site} listed twice in {tx_name!r}; put "
                        "all of a site's steps on one line",
                    )
                tx_sites_seen.add(site)
                continue
            raise DslError(line_number, "'site' outside any section")

        if head == "precede":
            if section != "transaction":
                raise DslError(
                    line_number, "'precede' belongs inside a transaction"
                )
            rest = " ".join(tokens[1:])
            if "->" not in rest:
                raise DslError(
                    line_number, "expected: precede <step> -> <step>"
                )
            left_text, right_text = (part.strip() for part in rest.split("->", 1))
            entities = set(stored_at)
            before = _parse_step_token(left_text, entities, line_number)
            after = _parse_step_token(right_text, entities, line_number)
            for step in (before, after):
                if step not in tx_steps:
                    raise DslError(
                        line_number,
                        f"step {step} not declared in {tx_name!r}",
                    )
            tx_precedences.append((before, after))
            continue

        raise DslError(line_number, f"unrecognized directive {head!r}")

    if database is None:
        if not stored_at:
            raise DslError(0, "no database declared")
        # A database with no transactions is a valid (empty) system —
        # the admission service starts from exactly this state.
        database = DistributedDatabase(stored_at)
    finish_transaction(len(text.splitlines()))
    try:
        return TransactionSystem(transactions, database=database)
    except ModelError as exc:
        raise DslError(0, str(exc)) from exc


def render_system(system: TransactionSystem) -> str:
    """Emit a system back into the DSL (parse/render round-trips up to
    formatting; used by the CLI's ``figures`` subcommand)."""
    lines = ["database"]
    db = system.database
    for site in range(1, db.sites + 1):
        entities = db.entities_at(site)
        if entities:
            lines.append(f"  site {site}: {' '.join(entities)}")
    for tx in system.transactions:
        lines.append("")
        lines.append(f"transaction {tx.name}")
        for site in sorted(tx.sites_used()):
            chain = " ".join(str(step) for step in tx.steps_at_site(site))
            lines.append(f"  site {site}: {chain}")
        cover = tx.poset().cover_graph()
        site_chains: dict[int, list[Step]] = {
            site: tx.steps_at_site(site) for site in tx.sites_used()
        }
        chain_pairs = {
            (a, b)
            for chain in site_chains.values()
            for a, b in zip(chain, chain[1:])
        }
        for tail, head in cover.arcs():
            if (tail, head) not in chain_pairs:
                lines.append(f"  precede {tail} -> {head}")
    return "\n".join(lines) + "\n"
