"""Tree (hierarchical) locking policies.

The paper's §6 recalls that correct locking policies are exactly the
*hypergraph* policies — generalizing "the hierarchical schemes of [12]"
(Silberschatz-Kedem).  This module implements the classical tree
protocol over a rooted entity hierarchy, as the concrete representative
of that non-two-phase family:

* a transaction's first lock may target any tree node;
* every later lock on ``x`` requires currently *holding* the lock on
  ``parent(x)``;
* each entity is locked at most once (the paper's model enforces this
  anyway).

Tree-protocol transactions are generally **not** two-phase, yet every
system they form is safe — giving the test suite a second, independent
family of safe-by-construction workloads.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from ..core.entity import DistributedDatabase
from ..core.step import Step
from ..core.transaction import Transaction, TransactionBuilder
from ..errors import ModelError


class EntityTree:
    """A rooted tree over entity names."""

    def __init__(self, parent_of: Mapping[str, str | None]) -> None:
        roots = [child for child, parent in parent_of.items() if parent is None]
        if len(roots) != 1:
            raise ModelError(
                f"an entity tree needs exactly one root, found {roots}"
            )
        self.parent_of = dict(parent_of)
        self.root = roots[0]
        # Validate: every parent is a node, no cycles.
        for child in parent_of:
            seen = {child}
            cursor = parent_of[child]
            while cursor is not None:
                if cursor not in parent_of:
                    raise ModelError(f"parent {cursor!r} is not a tree node")
                if cursor in seen:
                    raise ModelError(f"cycle in entity tree at {cursor!r}")
                seen.add(cursor)
                cursor = parent_of[cursor]

    def children_of(self, node: str) -> list[str]:
        return [
            child
            for child, parent in self.parent_of.items()
            if parent == node
        ]

    def nodes(self) -> list[str]:
        return list(self.parent_of)


def follows_tree_protocol(
    transaction: Transaction, tree: EntityTree, order: Sequence[Step] | None = None
) -> bool:
    """Check the protocol along a linear extension (default: canonical).

    The protocol is a *dynamic* rule; for a partially ordered
    transaction we require it along the given witness order.
    """
    if order is None:
        order = transaction.a_linear_extension()
    held: set[str] = set()
    first = True
    for step in order:
        if step.is_lock:
            entity = step.entity
            if not first:
                parent = tree.parent_of.get(entity)
                if parent is None or parent not in held:
                    return False
            held.add(entity)
            first = False
        elif step.is_unlock:
            held.discard(step.entity)
    return True


def random_tree_transaction(
    name: str,
    database: DistributedDatabase,
    tree: EntityTree,
    rng: random.Random,
    *,
    walk_length: int = 4,
) -> Transaction:
    """Generate a totally ordered transaction obeying the tree protocol:
    a random root-to-descendant walk, crab-style — lock the child while
    still holding the parent, then release the parent:

        ``L p0, p0, L p1, U p0, p1, L p2, U p1, p2, ..., U pk``

    Total order (explicit precedences between consecutive steps across
    sites) keeps the dynamic protocol meaningful for the unique
    extension.  Crab-walk pairs always produce a strongly connected
    ``D`` on their shared path prefix, so tree-protocol systems are safe
    by Theorem 1 — the non-two-phase safe family of the test suite.
    """
    builder = TransactionBuilder(name, database)
    path = [tree.root]
    cursor = tree.root
    for _ in range(walk_length - 1):
        children = [
            child for child in tree.children_of(cursor) if child in database
        ]
        if not children:
            break
        cursor = rng.choice(children)
        path.append(cursor)

    previous: Step | None = None

    def emit(step: Step) -> Step:
        nonlocal previous
        if previous is not None:
            builder.precede(previous, step)
        previous = step
        return step

    emit(builder.lock(path[0]))
    emit(builder.update(path[0]))
    for index in range(1, len(path)):
        emit(builder.lock(path[index]))
        emit(builder.unlock(path[index - 1]))
        emit(builder.update(path[index]))
    emit(builder.unlock(path[-1]))
    return builder.build()
