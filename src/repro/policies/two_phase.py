"""Two-phase locking in the distributed (partial-order) setting.

The paper singles out two-phase techniques as the one family with
existing distributed theory [1, 15], and Theorem 1 "can be used to prove
correct all existing distributed locking methodologies".  For partially
ordered transactions the right reading of *two-phase* is:

    every lock step precedes every unlock step in the partial order.

Then for any pair of two-phase transactions and any entities x, y locked
by both, ``Lx <1 Uy`` and ``Ly <2 Ux`` hold outright, so ``D(T1, T2)``
is the complete digraph on the shared entities — strongly connected —
and Theorem 1 yields safety at any number of sites
(:func:`two_phase_pair_is_safe` verifies the chain of reasoning).
"""

from __future__ import annotations

from ..core.dgraph import d_graph, shared_locked_entities
from ..core.transaction import Transaction
from ..errors import TransactionError
from ..graphs import is_strongly_connected


def is_two_phase(transaction: Transaction) -> bool:
    """Does every lock step precede every unlock step (partial-order
    two-phase property)?"""
    locks = [step for step in transaction.steps if step.is_lock]
    unlocks = [step for step in transaction.steps if step.is_unlock]
    return all(
        transaction.precedes(lock_step, unlock_step)
        for lock_step in locks
        for unlock_step in unlocks
    )


def lock_point(transaction: Transaction):
    """For a totally ordered two-phase transaction, the last lock step
    (the classical "lock point"); ``None`` if not totally ordered."""
    if not transaction.is_totally_ordered():
        return None
    order = transaction.a_linear_extension()
    last = None
    for step in order:
        if step.is_lock:
            last = step
    return last


def two_phase_pair_is_safe(first: Transaction, second: Transaction) -> bool:
    """The §6 argument, machine-checked: for a two-phase pair,
    ``D(T1, T2)`` is complete, hence strongly connected, hence the pair
    is safe (Theorem 1).  Raises if either transaction is not
    two-phase."""
    for tx in (first, second):
        if not is_two_phase(tx):
            raise TransactionError(f"{tx.name} is not two-phase")
    graph = d_graph(first, second)
    shared = shared_locked_entities(first, second)
    complete = all(
        graph.has_arc(x, y)
        for x in shared
        for y in shared
        if x != y
    )
    if not complete:
        raise AssertionError(
            "two-phase pair must have a complete D graph"
        )
    return is_strongly_connected(graph)


def two_phase_completion(transaction: Transaction) -> Transaction:
    """Strengthen a transaction into a two-phase one by adding the
    missing lock-before-unlock precedences.

    Raises :class:`TransactionError` when impossible — i.e. when some
    unlock already precedes some lock, which is precisely a violation of
    the two-phase rule that no ordering can repair.
    """
    locks = [step for step in transaction.steps if step.is_lock]
    unlocks = [step for step in transaction.steps if step.is_unlock]
    additions = []
    for lock_step in locks:
        for unlock_step in unlocks:
            if transaction.precedes(unlock_step, lock_step):
                raise TransactionError(
                    f"{transaction.name}: {unlock_step} precedes "
                    f"{lock_step}; the transaction cannot be made "
                    "two-phase by strengthening"
                )
            if not transaction.precedes(lock_step, unlock_step):
                additions.append((lock_step, unlock_step))
    if not additions:
        return transaction
    return transaction.with_precedences(additions)
