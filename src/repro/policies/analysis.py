"""Locking-policy analysis — the closing observations of §6.

    "In distributed databases, a locking policy (i.e., a class of
    distributed locked transactions) can be considered as a centralized
    locking policy, by taking the union of all the transactions,
    considered as sets of totally ordered transactions.  It follows that
    a policy is correct iff its centralized image is."

A *policy* here is, operationally, a finite sample of distributed
transactions the policy admits.  :func:`centralized_image` maps the
sample to the set of totally ordered transactions it induces;
:func:`policy_sample_is_safe` checks safety of the sample as a
transaction system, and :func:`centralized_image_is_safe` checks the
centralized image instead — the two verdicts must agree (tested), which
is this module's executable rendering of the §6 equivalence.
"""

from __future__ import annotations

from itertools import combinations

from ..core.dgraph import d_graph_of_total_orders
from ..core.safety import decide_safety
from ..core.schedule import TransactionSystem
from ..core.step import Step
from ..core.transaction import Transaction
from ..graphs import is_strongly_connected


def centralized_image(
    transactions: list[Transaction], *, per_transaction_limit: int | None = None
) -> list[list[Step]]:
    """All total orders induced by the sample ("the union of all the
    transactions, considered as sets of totally ordered transactions")."""
    image: list[list[Step]] = []
    for transaction in transactions:
        image.extend(
            transaction.linear_extensions(limit=per_transaction_limit)
        )
    return image


def total_order_pair_is_safe(t1: list[Step], t2: list[Step]) -> bool:
    """Centralized two-transaction safety: ``D(t1, t2)`` strongly
    connected (the single-site case of Theorem 2)."""
    return is_strongly_connected(d_graph_of_total_orders(t1, t2))


def centralized_image_is_safe(
    transactions: list[Transaction],
    *,
    per_transaction_limit: int | None = None,
) -> bool:
    """Pairwise safety over the centralized image.

    Quantifies over unordered pairs of (possibly equal-origin) total
    orders, which by Lemma 1 is exactly pairwise safety of the
    distributed sample.
    """
    image = centralized_image(
        transactions, per_transaction_limit=per_transaction_limit
    )
    for index, t1 in enumerate(image):
        for t2 in image[index + 1 :]:
            if not total_order_pair_is_safe(t1, t2):
                return False
    return True


def policy_sample_is_safe(transactions: list[Transaction]) -> bool:
    """Pairwise safety of the distributed sample, decided exactly.

    A policy is a *class*: two concurrent instances of the same admitted
    transaction are possible, so self-pairs (a transaction against a
    renamed clone of itself) are checked too — mirroring the fact that
    the centralized image quantifies over all pairs of total orders,
    including two extensions of one transaction.
    """
    def clone(tx: Transaction) -> Transaction:
        return Transaction(
            tx.name + "'", tx.database, tx.steps, tx.poset().arcs()
        )

    for first, second in combinations(transactions, 2):
        verdict = decide_safety(
            TransactionSystem([first, second]), want_certificate=False
        )
        if not verdict.safe:
            return False
    for tx in transactions:
        verdict = decide_safety(
            TransactionSystem([tx, clone(tx)]), want_certificate=False
        )
        if not verdict.safe:
            return False
    return True
