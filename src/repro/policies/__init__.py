"""Locking policies (§6): distributed two-phase locking, the tree
protocol, and the centralized-image correspondence."""

from .analysis import (
    centralized_image,
    centralized_image_is_safe,
    policy_sample_is_safe,
    total_order_pair_is_safe,
)
from .tree import EntityTree, follows_tree_protocol, random_tree_transaction
from .two_phase import (
    is_two_phase,
    lock_point,
    two_phase_completion,
    two_phase_pair_is_safe,
)

__all__ = [
    "EntityTree",
    "centralized_image",
    "centralized_image_is_safe",
    "follows_tree_protocol",
    "is_two_phase",
    "lock_point",
    "policy_sample_is_safe",
    "random_tree_transaction",
    "total_order_pair_is_safe",
    "two_phase_completion",
    "two_phase_pair_is_safe",
]
